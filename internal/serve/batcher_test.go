package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vero/gbdt"
	"vero/internal/datasets"
	"vero/internal/testutil"
)

// fakeClock is a manually advanced clock: timers fire only from Advance,
// so batcher deadline behavior is deterministic under test.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	c        chan time.Time
	deadline time.Time
	fired    bool
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) NewTimer(d time.Duration) batchTimer {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{c: make(chan time.Time, 1), deadline: c.now.Add(d)}
	c.timers = append(c.timers, t)
	return t
}

func (t *fakeTimer) C() <-chan time.Time { return t.c }
func (t *fakeTimer) Stop() bool          { return true }

// Advance moves the clock and fires every armed timer whose deadline has
// passed.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	for _, t := range c.timers {
		if !t.fired && !t.deadline.After(c.now) {
			t.fired = true
			t.c <- c.now
		}
	}
}

// waitTimers blocks until n timers have been armed (i.e. n batch leaders
// are waiting on their deadline).
func (c *fakeClock) waitTimers(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		got := len(c.timers)
		c.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d timers armed, want %d", got, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// queuedRows polls until the batcher's open batch holds n rows.
func queuedRows(t *testing.T, b *batcher, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		b.mu.Lock()
		got := 0
		if b.cur != nil {
			got = len(b.cur.feats)
		}
		b.mu.Unlock()
		if got >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d rows queued, want %d", got, n)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// batcherFixture is a batcher over a real trained predictor, primed as if
// a request just arrived so the arrival-gap fast path does not trigger
// (the tests simulate sustained load; the fake clock keeps gaps at zero).
func batcherFixture(t *testing.T, clk clock, cfg BatchConfig) (*batcher, *gbdt.Predictor, *gbdt.Dataset) {
	t.Helper()
	ds := testutil.Classification(t, datasets.SyntheticConfig{
		N: 800, D: 20, C: 2, InformativeRatio: 0.4, Density: 0.4, Seed: 5,
	})
	model, _, err := gbdt.Train(ds, gbdt.Options{Workers: 2, Trees: 4, Layers: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := gbdt.NewPredictor(model, gbdt.PredictorOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := newBatcher(pred, cfg, clk, &modelMetrics{})
	primeArrivals(b)
	return b, pred, ds
}

// primeArrivals marks the batcher as having just seen a request, so the
// next enqueue observes a zero arrival gap and queues.
func primeArrivals(b *batcher) {
	b.mu.Lock()
	b.last = b.clk.Now()
	b.mu.Unlock()
}

// enqueueAsync runs enqueue in a goroutine and delivers its result.
type enqueueResult struct {
	margins []float64
	ok      bool
}

func enqueueAsync(b *batcher, feat []uint32, val []float32) <-chan enqueueResult {
	ch := make(chan enqueueResult, 1)
	go func() {
		m, ok := b.enqueue(feat, val)
		ch <- enqueueResult{m, ok}
	}()
	return ch
}

// TestBatcherFlushOnCount pins the count trigger: the request whose row
// fills the batch flushes it, every waiter gets its own row's margins,
// and the flush is accounted as "full" — the deadline timer never fires.
func TestBatcherFlushOnCount(t *testing.T) {
	clk := newFakeClock()
	b, pred, ds := batcherFixture(t, clk, BatchConfig{Deadline: time.Hour, MaxRows: 3})

	var chans []<-chan enqueueResult
	for i := 0; i < 2; i++ {
		feat, val := ds.X.Row(i)
		chans = append(chans, enqueueAsync(b, feat, val))
	}
	queuedRows(t, b, 2)
	// The third row fills the batch; this call flushes and returns.
	feat, val := ds.X.Row(2)
	margins, ok := b.enqueue(feat, val)
	if !ok {
		t.Fatal("filling enqueue was refused")
	}
	if want := pred.PredictRow(feat, val); margins[0] != want[0] {
		t.Fatalf("filler margins %v, want %v", margins, want)
	}
	for i, ch := range chans {
		res := <-ch
		if !res.ok {
			t.Fatalf("waiter %d refused", i)
		}
		feat, val := ds.X.Row(i)
		if want := pred.PredictRow(feat, val); res.margins[0] != want[0] {
			t.Fatalf("waiter %d margins %v, want %v", i, res.margins, want[0])
		}
	}
	if got := b.metrics.batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
	if got := b.metrics.batchedRows.Load(); got != 3 {
		t.Fatalf("batchedRows = %d, want 3", got)
	}
	if got := b.metrics.batchFlush[flushFull].Load(); got != 1 {
		t.Fatalf("flushFull = %d, want 1", got)
	}
	if got := b.metrics.batchFlush[flushDeadline].Load(); got != 0 {
		t.Fatalf("flushDeadline = %d, want 0", got)
	}
}

// TestBatcherFlushOnDeadline pins the deadline trigger: an under-filled
// batch flushes when the leader's timer fires, with the queue wait
// recorded.
func TestBatcherFlushOnDeadline(t *testing.T) {
	clk := newFakeClock()
	b, pred, ds := batcherFixture(t, clk, BatchConfig{Deadline: time.Millisecond, MaxRows: 8})

	var chans []<-chan enqueueResult
	for i := 0; i < 2; i++ {
		feat, val := ds.X.Row(i)
		chans = append(chans, enqueueAsync(b, feat, val))
	}
	clk.waitTimers(t, 1)
	queuedRows(t, b, 2)
	clk.Advance(time.Millisecond)
	for i, ch := range chans {
		res := <-ch
		if !res.ok {
			t.Fatalf("waiter %d refused", i)
		}
		feat, val := ds.X.Row(i)
		if want := pred.PredictRow(feat, val); res.margins[0] != want[0] {
			t.Fatalf("waiter %d margins %v, want %v", i, res.margins, want[0])
		}
	}
	if got := b.metrics.batchFlush[flushDeadline].Load(); got != 1 {
		t.Fatalf("flushDeadline = %d, want 1", got)
	}
	if got := b.metrics.batchedRows.Load(); got != 2 {
		t.Fatalf("batchedRows = %d, want 2", got)
	}
	snap := b.metrics.snapshot("m", 1, true)
	if snap.Batching.QueueWaitMs.Count != 2 {
		t.Fatalf("queue wait count = %d, want 2", snap.Batching.QueueWaitMs.Count)
	}
	if snap.Batching.Factor != 2 {
		t.Fatalf("batching factor = %v, want 2", snap.Batching.Factor)
	}
}

// TestBatcherInlineFastPath pins the single-request fast path: when the
// queue is empty and the previous request arrived more than a deadline
// ago (or never), enqueue declines instead of making a lone request wait
// out a deadline no companion will beat.
func TestBatcherInlineFastPath(t *testing.T) {
	clk := newFakeClock()
	b, _, ds := batcherFixture(t, clk, BatchConfig{Deadline: time.Millisecond, MaxRows: 8})
	feat, val := ds.X.Row(0)

	// Sparse traffic: the last request is two deadlines in the past.
	clk.Advance(2 * time.Millisecond)
	if _, ok := b.enqueue(feat, val); ok {
		t.Fatal("sparse-traffic request was queued; want inline fast path")
	}
	if got := b.metrics.batchInline.Load(); got != 1 {
		t.Fatalf("batchInline = %d, want 1", got)
	}
	if got := b.metrics.batches.Load(); got != 0 {
		t.Fatalf("batches = %d, want 0", got)
	}

	// The inline request still counts as an arrival: a request right on
	// its heels queues (and, alone at the deadline, flushes as a batch of
	// one).
	done := enqueueAsync(b, feat, val)
	clk.waitTimers(t, 1)
	clk.Advance(time.Millisecond)
	if res := <-done; !res.ok {
		t.Fatal("request within the deadline gap was refused")
	}
	if got := b.metrics.batchedRows.Load(); got != 1 {
		t.Fatalf("batchedRows = %d, want 1", got)
	}

	// A fresh batcher has seen no arrivals at all: first request inline.
	b2 := newBatcher(b.pred, b.cfg, clk, &modelMetrics{})
	if _, ok := b2.enqueue(feat, val); ok {
		t.Fatal("first-ever request was queued; want inline fast path")
	}
}

// TestBatcherCloseDrains pins shutdown: Close scores and answers every
// queued row exactly once (flush cause "drain") and later enqueues fall
// back to inline scoring.
func TestBatcherCloseDrains(t *testing.T) {
	clk := newFakeClock()
	b, pred, ds := batcherFixture(t, clk, BatchConfig{Deadline: time.Hour, MaxRows: 8})

	var chans []<-chan enqueueResult
	for i := 0; i < 3; i++ {
		feat, val := ds.X.Row(i)
		chans = append(chans, enqueueAsync(b, feat, val))
	}
	queuedRows(t, b, 3)
	b.Close()
	for i, ch := range chans {
		res := <-ch
		if !res.ok {
			t.Fatalf("drained waiter %d refused", i)
		}
		feat, val := ds.X.Row(i)
		if want := pred.PredictRow(feat, val); res.margins[0] != want[0] {
			t.Fatalf("drained waiter %d margins %v, want %v", i, res.margins, want[0])
		}
	}
	if got := b.metrics.batchFlush[flushDrain].Load(); got != 1 {
		t.Fatalf("flushDrain = %d, want 1", got)
	}
	feat, val := ds.X.Row(4)
	if _, ok := b.enqueue(feat, val); ok {
		t.Fatal("enqueue after Close was accepted")
	}
	if b.Close(); b.metrics.batchFlush[flushDrain].Load() != 1 {
		t.Fatal("second Close flushed again")
	}
}

// TestBatcherCloseRacesDeadlineFlush races Close against the leader's
// deadline firing at the same instant. Whoever wins, the batch must be
// claimed and scored exactly once, the waiter answered exactly once, and
// the flush attributed to exactly one cause. Run with -race.
func TestBatcherCloseRacesDeadlineFlush(t *testing.T) {
	pred, err := gbdt.NewPredictor(constModel(t, 2), gbdt.PredictorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		clk := newFakeClock()
		m := &modelMetrics{}
		b := newBatcher(pred, BatchConfig{Deadline: time.Millisecond, MaxRows: 8}, clk, m)
		primeArrivals(b)
		ch := enqueueAsync(b, nil, nil)
		clk.waitTimers(t, 1)
		queuedRows(t, b, 1)

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); clk.Advance(time.Millisecond) }()
		go func() { defer wg.Done(); b.Close() }()
		wg.Wait()

		select {
		case res := <-ch:
			if !res.ok {
				t.Fatalf("iter %d: queued row refused during shutdown", i)
			}
			if res.margins[0] != 2 {
				t.Fatalf("iter %d: margins %v, want [2]", i, res.margins)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iter %d: queued request hung across Close/deadline race", i)
		}
		if got := m.batches.Load(); got != 1 {
			t.Fatalf("iter %d: batch scored %d times, want exactly once", i, got)
		}
		dl := m.batchFlush[flushDeadline].Load()
		dr := m.batchFlush[flushDrain].Load()
		if dl+dr != 1 {
			t.Fatalf("iter %d: flush causes deadline=%d drain=%d, want exactly one", i, dl, dr)
		}
	}
}

// TestBatcherCloseRacesEnqueues fires a burst of enqueues concurrently
// with Close: every request must get exactly one outcome — scored through
// the drained batch, or refused to inline — and none may hang.
func TestBatcherCloseRacesEnqueues(t *testing.T) {
	pred, err := gbdt.NewPredictor(constModel(t, 5), gbdt.PredictorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		clk := newFakeClock()
		m := &modelMetrics{}
		b := newBatcher(pred, BatchConfig{Deadline: time.Hour, MaxRows: 100}, clk, m)
		primeArrivals(b)

		const burst = 8
		start := make(chan struct{})
		results := make(chan enqueueResult, burst)
		for g := 0; g < burst; g++ {
			go func() {
				<-start
				margins, ok := b.enqueue(nil, nil)
				results <- enqueueResult{margins, ok}
			}()
		}
		close(start)
		b.Close()

		answered := 0
		for g := 0; g < burst; g++ {
			select {
			case res := <-results:
				if res.ok {
					if res.margins[0] != 5 {
						t.Fatalf("iter %d: margins %v, want [5]", i, res.margins)
					}
					answered++
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("iter %d: %d of %d requests hung across Close", i, burst-g, burst)
			}
		}
		if got := m.batchedRows.Load(); got != int64(answered) {
			t.Fatalf("iter %d: %d rows batched but %d requests answered", i, got, answered)
		}
		if got := m.batches.Load(); got > 1 {
			t.Fatalf("iter %d: %d batches after Close, want at most one", i, got)
		}
	}
}

// TestBatcherEnqueueAfterClose pins the post-shutdown contract: enqueue on
// a closed batcher returns (nil, false) immediately — the caller falls
// back to inline scoring — rather than parking on a batch no flusher will
// ever claim.
func TestBatcherEnqueueAfterClose(t *testing.T) {
	pred, err := gbdt.NewPredictor(constModel(t, 1), gbdt.PredictorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	b := newBatcher(pred, BatchConfig{Deadline: time.Hour, MaxRows: 4}, clk, &modelMetrics{})
	b.Close()
	for i := 0; i < 3; i++ {
		primeArrivals(b) // even under sustained-load arrival gaps, closed wins
		select {
		case res := <-enqueueAsync(b, nil, nil):
			if res.ok || res.margins != nil {
				t.Fatalf("enqueue %d after Close accepted: %+v", i, res)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("enqueue %d after Close hung", i)
		}
	}
}

// TestBatcherHotSwapPinsVersion pins version isolation: rows queued on
// one version are scored by that version's predictor even when a swap
// lands before their batch flushes — the swap drains the outgoing queue.
func TestBatcherHotSwapPinsVersion(t *testing.T) {
	opts := Options{
		MaxInFlight: 8,
		Batch:       BatchConfig{Deadline: time.Hour, MaxRows: 4},
		clock:       newFakeClock(),
	}
	srv, err := New(constModel(t, 1.0), "v1", opts)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := srv.Registry().get(DefaultModel)
	if h1.batcher == nil {
		t.Fatal("batching configured but handle has no batcher")
	}
	primeArrivals(h1.batcher)
	ch := enqueueAsync(h1.batcher, nil, nil)
	queuedRows(t, h1.batcher, 1)

	if _, _, err := srv.Registry().Swap(DefaultModel, "v2", constModel(t, 2.0)); err != nil {
		t.Fatal(err)
	}
	res := <-ch
	if !res.ok {
		t.Fatal("queued request dropped across swap")
	}
	wantOld := h1.pred.PredictRow(nil, nil)[0]
	if res.margins[0] != wantOld {
		t.Fatalf("queued row scored %v, want old version's %v", res.margins[0], wantOld)
	}
	h2, _ := srv.Registry().get(DefaultModel)
	if h2.batcher == h1.batcher {
		t.Fatal("new version shares the old version's batcher")
	}
	if h2.version != 2 {
		t.Fatalf("post-swap version %d, want 2", h2.version)
	}
	if got := h1.pred.PredictRow(nil, nil)[0]; got == h2.pred.PredictRow(nil, nil)[0] {
		t.Fatalf("test models indistinguishable (both score %v)", got)
	}
	if got := h1.metrics.batchFlush[flushDrain].Load(); got != 1 {
		t.Fatalf("swap did not drain the outgoing queue: flushDrain = %d", got)
	}
}

// TestBatchingStress is the serve-tier race test: predict goroutines
// hammer two models through real HTTP while swap and delete/reload
// goroutines churn the registry, with micro-batching on a real clock.
// Every request must get exactly one well-formed response, and the
// /metricz batching counters must balance. Run with -race.
func TestBatchingStress(t *testing.T) {
	ds := testutil.Classification(t, datasets.SyntheticConfig{
		N: 400, D: 15, C: 2, InformativeRatio: 0.4, Density: 0.5, Seed: 13,
	})
	model, _, err := gbdt.Train(ds, gbdt.Options{Workers: 2, Trees: 3, Layers: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewMulti([]ModelSpec{
		{Name: "stable", Source: "a", Model: model},
		{Name: "churn", Source: "b", Model: model},
	}, Options{
		Workers:     2,
		MaxInFlight: 16,
		Batch:       BatchConfig{Deadline: 200 * time.Microsecond, MaxRows: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	const (
		predictG   = 8
		perG       = 40
		swapG      = 2
		perSwapper = 15
	)
	var responses, errors atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < predictG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "stable"
			if g%2 == 1 {
				name = "churn"
			}
			for i := 0; i < perG; i++ {
				feat, val := ds.X.Row((g*perG + i) % 400)
				body, _ := json.Marshal(PredictRequest{Rows: []SparseRow{{Indices: feat, Values: val}}})
				resp, err := http.Post(ts.URL+"/v1/models/"+name+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				var out PredictResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					if decErr != nil || len(out.Scores) != 1 {
						t.Errorf("malformed OK response: err=%v scores=%d", decErr, len(out.Scores))
						return
					}
					responses.Add(1)
				case resp.StatusCode == http.StatusNotFound:
					// churn model momentarily deleted — still exactly one
					// response for the request.
					errors.Add(1)
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
					return
				}
			}
		}(g)
	}
	for g := 0; g < swapG; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSwapper; i++ {
				if g == 0 {
					if _, _, err := srv.Registry().Swap("churn", "swap", model); err != nil {
						t.Error(err)
						return
					}
				} else {
					// Delete then immediately re-register.
					if err := srv.Registry().Delete("churn"); err == nil {
						if _, _, err := srv.Registry().Swap("churn", "reload", model); err != nil {
							t.Error(err)
							return
						}
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := responses.Load() + errors.Load(); got != predictG*perG {
		t.Fatalf("%d responses for %d requests", got, predictG*perG)
	}

	// Counter balance on the stable model (the churned name's counters are
	// shared per-name but its handles come and go): every successful
	// request's row was scored exactly once — through a batch or inline —
	// and each flush has exactly one recorded cause.
	var mr MetricsResponse
	resp, err := http.Get(ts.URL + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, m := range mr.Models {
		if m.Model != "stable" {
			continue
		}
		b := m.Batching
		if b == nil {
			t.Fatal("stable model reports no batching section")
		}
		if m.Errors != 0 {
			t.Fatalf("stable model reports %d errors", m.Errors)
		}
		if b.BatchedRows+b.Inline != m.Rows {
			t.Fatalf("batched %d + inline %d != rows %d", b.BatchedRows, b.Inline, m.Rows)
		}
		if b.Batches != b.FlushFull+b.FlushDeadline+b.FlushDrain {
			t.Fatalf("batches %d != flush causes %d+%d+%d", b.Batches, b.FlushFull, b.FlushDeadline, b.FlushDrain)
		}
		if b.QueueWaitMs.Count != b.BatchedRows {
			t.Fatalf("queue waits %d != batched rows %d", b.QueueWaitMs.Count, b.BatchedRows)
		}
		if m.Requests != predictG/2*perG {
			t.Fatalf("stable requests = %d, want %d", m.Requests, predictG/2*perG)
		}
		return
	}
	t.Fatal("stable model missing from /metricz")
}

// TestErrorEnvelope pins the stable JSON error envelope for every predict
// failure mode: {"error":{"code":..., "message":...}} with the expected
// status and machine-readable code.
func TestErrorEnvelope(t *testing.T) {
	srv, err := New(constModel(t, 1.0), "m", Options{MaxBatchRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name       string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed json", "/v1/predict", `{"rows": [`, http.StatusBadRequest, "bad_request"},
		{"not json", "/v1/predict", `hello`, http.StatusBadRequest, "bad_request"},
		{"unknown field", "/v1/predict", `{"rowz": []}`, http.StatusBadRequest, "bad_request"},
		{"empty request", "/v1/predict", `{}`, http.StatusBadRequest, "bad_request"},
		{"mismatched row arrays", "/v1/predict", `{"rows":[{"indices":[1,2],"values":[0.5]}]}`, http.StatusBadRequest, "bad_request"},
		{"duplicate feature", "/v1/predict", `{"rows":[{"indices":[1,1],"values":[0.5,0.5]}]}`, http.StatusBadRequest, "bad_request"},
		{"too many rows", "/v1/predict", `{"dense":[[1],[1],[1],[1],[1]]}`, http.StatusRequestEntityTooLarge, "too_large"},
		{"unknown model", "/v1/models/nope/predict", `{"dense":[[1]]}`, http.StatusNotFound, "not_found"},
		{"admin disabled", "/v1/models/m", `{"path":"x"}`, http.StatusForbidden, "forbidden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+tc.path, "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			// Decode generically to pin the envelope's shape, not just the
			// struct mapping.
			var raw map[string]json.RawMessage
			if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
				t.Fatalf("error response is not a JSON object: %v", err)
			}
			inner, ok := raw["error"]
			if !ok || len(raw) != 1 {
				t.Fatalf("envelope keys %v, want exactly [error]", keys(raw))
			}
			var body ErrorBody
			if err := json.Unmarshal(inner, &body); err != nil {
				t.Fatalf("error body is not {code,message}: %v", err)
			}
			if body.Code != tc.wantCode {
				t.Fatalf("code %q, want %q", body.Code, tc.wantCode)
			}
			if body.Message == "" {
				t.Fatal("empty error message")
			}
		})
	}
}

func keys(m map[string]json.RawMessage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
