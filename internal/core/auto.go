package core

import (
	"fmt"

	"vero/internal/advisor"
	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/loss"
)

// resolveAuto turns Config.Quadrant == QuadrantAuto into a concrete
// quadrant: it derives the advisor's workload from the dataset and
// cluster (shape, gradient dimension, sparsity, network model), asks for
// a recommendation, and specializes the config to the recommended
// quadrant's reference policy — the system named in that quadrant of
// Figure 1. Hyper-parameters are untouched, so the trained model is
// bit-identical to an explicit run of the chosen quadrant.
func resolveAuto(cl *cluster.Cluster, ds *datasets.Dataset, cfg Config, obj loss.Objective) (Config, *Selection, error) {
	w := advisor.FromDataset(ds, cl.Workers(), cl.Net())
	w.L = int64(cfg.Layers)
	w.Q = int64(cfg.Splits)
	w.C = int64(obj.NumClass())
	rec, err := advisor.Recommend(w)
	if err != nil {
		return cfg, nil, fmt.Errorf("core: auto quadrant: %w", err)
	}
	cfg, err = ConfigureQuadrant(Quadrant(rec.Quadrant), cfg)
	if err != nil {
		return cfg, nil, fmt.Errorf("core: auto quadrant: %w", err)
	}
	return cfg, &Selection{Quadrant: cfg.Quadrant, Workload: w, Advice: rec}, nil
}
