package core

import (
	"fmt"
	"os"
	"runtime"

	"vero/internal/cluster"
	"vero/internal/datasets"
	"vero/internal/failpoint"
	"vero/internal/histogram"
	"vero/internal/loss"
	"vero/internal/sparse"
	"vero/internal/tree"
)

// Phase labels used in the cluster's statistics.
const (
	phaseGrad   = "train.gradient"
	phaseHist   = "train.histogram"
	phaseSplit  = "train.split"
	phaseNode   = "train.node"
	phaseUpdate = "train.update"
)

const noParent = int32(-1)

// nodeInfo tracks one active tree node during layer-wise growth.
type nodeInfo struct {
	id     int32
	count  int
	totalG []float64
	totalH []float64
	// buildDirect marks nodes whose histograms are constructed by
	// scanning instances; the sibling of a built node is derived by
	// subtraction when the quadrant supports it.
	buildDirect bool
	parent      int32
}

// resolvedSplit is a node's winning split translated to global feature ids.
type resolvedSplit struct {
	node        int32
	feature     int // global feature id
	bin         int
	gain        float64
	defaultLeft bool
	valid       bool
}

// trainer runs the quadrant-agnostic layer-wise boosting loop. Everything
// quadrant-specific — data shards, node/instance indexes, histogram maps
// and their memory accounting — lives behind the engine interface; the
// trainer holds only state every policy shares.
type trainer struct {
	cl  *cluster.Cluster
	cfg Config
	ds  *datasets.Dataset
	obj loss.Objective

	n, d, c, w int
	finder     histogram.Finder
	// pool recycles histogram buffers across nodes, layers and trees; all
	// histogram allocation in the training loop goes through it.
	pool *histogram.Pool

	binner        *sparse.Binner
	numBinsGlobal []int
	maxBins       int
	// ranges is the dataset's incoming horizontal layout: the row range
	// each worker holds before any repartitioning. All quadrants sketch
	// from it; the horizontal engine also trains on it.
	ranges [][2]int

	preds, grads, hessv []float64 // n*c, row-major

	// ckptConfigHash and ckptDataFP fingerprint this run for checkpoint
	// matching; set by Train only when checkpointing is on.
	ckptConfigHash string
	ckptDataFP     string

	// stream serves block reads when the dataset is out-of-core
	// (ds.OutOfCore()); nil for materialized datasets.
	stream *colStream
	// peakHeap is the heap high-water mark sampled at tree boundaries.
	peakHeap uint64

	// eng is the quadrant strategy prep.go constructed for cfg.Quadrant.
	eng engine
}

// sampleHeap updates the heap high-water mark from the runtime.
func (t *trainer) sampleHeap() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > t.peakHeap {
		t.peakHeap = ms.HeapAlloc
	}
}

// allocRunState allocates the per-run prediction and gradient buffers,
// seeding every instance's predictions with initScore, then lets the
// engine allocate its own run scratch.
func (t *trainer) allocRunState(initScore []float64) {
	t.preds = make([]float64, t.n*t.c)
	for i := 0; i < t.n; i++ {
		copy(t.preds[i*t.c:(i+1)*t.c], initScore)
	}
	t.grads = make([]float64, t.n*t.c)
	t.hessv = make([]float64, t.n*t.c)
	t.eng.beginRun()
}

func (t *trainer) run(ck *checkpoint) (*Result, error) {
	initScore := t.obj.InitScore(t.ds.Labels)
	t.allocRunState(initScore)
	forest := tree.NewForest(t.c, t.cfg.LearningRate, initScore, t.obj.Name(), t.d)
	// Record the candidate splits the trees' thresholds were drawn from,
	// so serving can compile the binned (bin-code) inference engine. The
	// inner slices are immutable after preparation and safe to share.
	forest.Splits = append([][]float32(nil), t.binner.Splits...)

	start := 0
	if ck != nil {
		// Adopt the checkpointed trees and replay them through the engine
		// so the prediction state is bit-identical to having trained them;
		// boosting then continues from round start.
		forest.Trees = ck.forest.Trees
		t.resume(ck)
		start = ck.round
	}

	prepComp, prepComm, _ := t.cl.Stats().Totals()
	lastComp, lastComm := prepComp, prepComm
	res := &Result{Forest: forest, StartRound: start, PrepSeconds: prepComp + prepComm, TransformBytes: t.eng.transformReport()}

	t.sampleHeap()
	ckptPath := t.checkpointPath()
	for ti := start; ti < t.cfg.Trees; ti++ {
		t.computeGradients()
		tr := t.trainTree()
		if t.stream != nil {
			// A streaming read failure is sticky: abort at the tree
			// boundary rather than appending a tree built from partial
			// data (its histograms saw garbage after the failure point).
			if err := t.stream.ok(); err != nil {
				return nil, fmt.Errorf("core: out-of-core training aborted during round %d: %w", ti+1, err)
			}
		}
		// A transport failure is likewise sticky (the collectives record
		// it and return without reducing): abort at the tree boundary
		// rather than appending a tree whose histograms never left the
		// local rank.
		if err := t.cl.Err(); err != nil {
			return nil, fmt.Errorf("core: distributed training aborted during round %d: %w", ti+1, err)
		}
		t.sampleHeap()
		forest.Append(tr)
		if ckptPath != "" && (ti+1)%t.cfg.CheckpointEvery == 0 && ti+1 < t.cfg.Trees {
			// A failed save is non-fatal: the run keeps training with the
			// previous checkpoint (or none) on disk and reports the error.
			if err := t.saveCheckpoint(ckptPath, forest, ti+1); err != nil {
				res.CheckpointErr = err
			}
		}
		if err := failpoint.Inject(FailpointAfterTree); err != nil {
			return nil, fmt.Errorf("core: training aborted after round %d: %w", ti+1, err)
		}
		comp, comm, _ := t.cl.Stats().Totals()
		res.PerTreeSeconds = append(res.PerTreeSeconds, (comp-lastComp)+(comm-lastComm))
		lastComp, lastComm = comp, comm
		if t.cfg.OnTree != nil {
			t.cfg.OnTree(ti, (comp-prepComp)+(comm-prepComm), tr)
		}
		if t.cfg.ShouldStop != nil && t.cfg.ShouldStop(ti) {
			break
		}
	}
	if ckptPath != "" {
		// The run completed; a stale checkpoint would resume a finished
		// model, so remove it.
		if err := os.Remove(ckptPath); err != nil && !os.IsNotExist(err) {
			res.CheckpointErr = err
		}
	}
	// Release the final tree's remaining histograms (the last layer's
	// split parents, kept for subtraction, are otherwise only cleared
	// lazily at the next tree's start) so the memory gauge balances.
	t.eng.clearHists()
	comp, comm, _ := t.cl.Stats().Totals()
	res.CompSeconds = comp
	res.CommSeconds = comm
	res.PeakHeapBytes = t.peakHeap
	return res, nil
}

// computeGradients refreshes the per-instance gradient vectors with the
// engine's work placement.
func (t *trainer) computeGradients() { t.eng.computeGradients() }

// trainTree grows one tree layer by layer.
func (t *trainer) trainTree() *tree.Tree {
	tr := tree.New(t.c)
	t.eng.resetIndexes()
	t.eng.clearHists()

	root := &nodeInfo{id: tr.Root(), count: t.n, buildDirect: true, parent: noParent}
	root.totalG, root.totalH = t.eng.rootTotals()
	frontier := []*nodeInfo{root}

	for layer := 1; layer < t.cfg.Layers && len(frontier) > 0; layer++ {
		var toBuild, toDerive []*nodeInfo
		for _, nd := range frontier {
			if nd.buildDirect {
				toBuild = append(toBuild, nd)
			} else {
				toDerive = append(toDerive, nd)
			}
		}
		if len(toBuild) > 0 {
			t.eng.buildHistograms(toBuild)
		}
		if len(toDerive) > 0 {
			t.eng.deriveHistograms(toDerive)
		}
		splits := t.eng.findSplits(frontier)
		frontier = t.applySplits(tr, frontier, splits)
	}
	for _, nd := range frontier {
		t.setLeaf(tr, nd)
		t.eng.dropHist(nd.id)
	}
	t.eng.updatePredictions(tr)
	return tr
}

func (t *trainer) setLeaf(tr *tree.Tree, nd *nodeInfo) {
	tr.SetLeaf(nd.id, t.finder.LeafWeights(nd.totalG, nd.totalH))
}

// applySplits finalizes leaves, splits the rest, propagates placements and
// computes child statistics. It returns the next layer's frontier.
func (t *trainer) applySplits(tr *tree.Tree, frontier []*nodeInfo, splits map[int32]resolvedSplit) []*nodeInfo {
	type splitJob struct {
		parent *nodeInfo
		sp     resolvedSplit
		left   int32
		right  int32
	}
	var jobs []*splitJob
	for _, nd := range frontier {
		sp, ok := splits[nd.id]
		if !ok || !sp.valid {
			t.setLeaf(tr, nd)
			t.eng.dropHist(nd.id)
			continue
		}
		splitValue := t.binner.Splits[sp.feature][sp.bin]
		l, r := tr.Split(nd.id, int32(sp.feature), splitValue, uint16(sp.bin), sp.defaultLeft, sp.gain)
		jobs = append(jobs, &splitJob{parent: nd, sp: sp, left: l, right: r})
	}
	if len(jobs) == 0 {
		return nil
	}

	layerSplits := make(map[int32]resolvedSplit, len(jobs))
	children := make(map[int32][2]int32, len(jobs))
	for _, j := range jobs {
		layerSplits[j.parent.id] = j.sp
		children[j.parent.id] = [2]int32{j.left, j.right}
	}
	t.eng.applyLayer(layerSplits, children)

	// Without subtraction, parent histograms have no further use: drop
	// them now instead of carrying them to the next layer.
	subtract := t.eng.usesSubtraction()
	if !subtract {
		for _, j := range jobs {
			t.eng.dropHist(j.parent.id)
		}
	}

	var next []*nodeInfo
	for _, j := range jobs {
		left := &nodeInfo{id: j.left, parent: j.parent.id}
		right := &nodeInfo{id: j.right, parent: j.parent.id}
		next = append(next, left, right)
	}
	t.eng.childStats(next)
	// Histogram subtraction schedule: build the smaller child, derive the
	// sibling (Section 2.1.2). Without subtraction both children build.
	for i := 0; i < len(next); i += 2 {
		l, r := next[i], next[i+1]
		if !subtract {
			l.buildDirect, r.buildDirect = true, true
			continue
		}
		if l.count <= r.count {
			l.buildDirect = true
		} else {
			r.buildDirect = true
		}
	}
	return next
}
