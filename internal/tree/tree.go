// Package tree implements the decision-tree and GBDT-forest model
// structures shared by every quadrant trainer, along with prediction and
// serialization.
//
// Trees are stored as flat node arrays. Leaves carry C-dimensional weight
// vectors so a single tree serves multi-classification, matching the
// gradient-vector formulation the paper's histogram-size analysis assumes
// (Section 3.1.1).
package tree

import (
	"encoding/json"
	"fmt"

	"vero/internal/sparse"
)

// NoChild marks an absent child link.
const NoChild = int32(-1)

// Node is one tree node. Interior nodes route on (Feature, SplitValue);
// instances with a missing value on Feature follow DefaultLeft.
type Node struct {
	// Feature is the global feature id of the split; -1 on leaves.
	Feature int32 `json:"feature"`
	// SplitValue is the raw-value threshold: value <= SplitValue goes left.
	SplitValue float32 `json:"split_value"`
	// SplitBin is the histogram-bin threshold used when routing binned
	// data during training: bin <= SplitBin goes left.
	SplitBin uint16 `json:"split_bin"`
	// DefaultLeft routes missing values left when true.
	DefaultLeft bool `json:"default_left"`
	// Left and Right are child node indexes, or NoChild.
	Left  int32 `json:"left"`
	Right int32 `json:"right"`
	// Gain is the split gain (Equation 2) recorded for diagnostics.
	Gain float64 `json:"gain,omitempty"`
	// Weights holds the C leaf values; nil on interior nodes.
	Weights []float64 `json:"weights,omitempty"`
}

// IsLeaf reports whether the node has no split.
func (n *Node) IsLeaf() bool { return n.Feature < 0 }

// Tree is a single decision tree with C-dimensional leaf outputs.
type Tree struct {
	Nodes    []Node `json:"nodes"`
	NumClass int    `json:"num_class"`
}

// New returns a tree with a single root leaf (zero weights).
func New(numClass int) *Tree {
	return &Tree{
		Nodes:    []Node{{Feature: -1, Left: NoChild, Right: NoChild, Weights: make([]float64, numClass)}},
		NumClass: numClass,
	}
}

// Root returns the root node index (always 0).
func (t *Tree) Root() int32 { return 0 }

// Split turns leaf id into an interior node with the given split and
// appends two fresh leaf children, returning their indexes.
func (t *Tree) Split(id int32, feature int32, splitValue float32, splitBin uint16, defaultLeft bool, gain float64) (left, right int32) {
	n := &t.Nodes[id]
	if !n.IsLeaf() {
		panic(fmt.Sprintf("tree: Split on interior node %d", id))
	}
	left = int32(len(t.Nodes))
	right = left + 1
	t.Nodes = append(t.Nodes,
		Node{Feature: -1, Left: NoChild, Right: NoChild, Weights: make([]float64, t.NumClass)},
		Node{Feature: -1, Left: NoChild, Right: NoChild, Weights: make([]float64, t.NumClass)},
	)
	n = &t.Nodes[id] // reacquire: append may have moved the backing array
	n.Feature = feature
	n.SplitValue = splitValue
	n.SplitBin = splitBin
	n.DefaultLeft = defaultLeft
	n.Gain = gain
	n.Left = left
	n.Right = right
	n.Weights = nil
	return left, right
}

// SetLeaf assigns the weight vector of leaf id.
func (t *Tree) SetLeaf(id int32, weights []float64) {
	n := &t.Nodes[id]
	if !n.IsLeaf() {
		panic(fmt.Sprintf("tree: SetLeaf on interior node %d", id))
	}
	if len(weights) != t.NumClass {
		panic(fmt.Sprintf("tree: %d weights for %d classes", len(weights), t.NumClass))
	}
	n.Weights = append(n.Weights[:0], weights...)
}

// NumLeaves returns the number of leaf nodes.
func (t *Tree) NumLeaves() int {
	c := 0
	for i := range t.Nodes {
		if t.Nodes[i].IsLeaf() {
			c++
		}
	}
	return c
}

// MaxDepth returns the number of layers (root-only tree has depth 1).
func (t *Tree) MaxDepth() int {
	if len(t.Nodes) == 0 {
		return 0
	}
	var walk func(id int32) int
	walk = func(id int32) int {
		n := &t.Nodes[id]
		if n.IsLeaf() {
			return 1
		}
		l := walk(n.Left)
		r := walk(n.Right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(0)
}

// PredictLeaf routes one sparse row (parallel feature/value slices sorted
// by feature id) to its leaf and returns the leaf node index.
func (t *Tree) PredictLeaf(feat []uint32, val []float32) int32 {
	id := int32(0)
	for {
		n := &t.Nodes[id]
		if n.IsLeaf() {
			return id
		}
		v, ok := lookup(feat, val, uint32(n.Feature))
		switch {
		case !ok:
			if n.DefaultLeft {
				id = n.Left
			} else {
				id = n.Right
			}
		case v <= n.SplitValue:
			id = n.Left
		default:
			id = n.Right
		}
	}
}

// Predict accumulates the tree's output for one sparse row into out
// (length NumClass), scaled by eta.
func (t *Tree) Predict(feat []uint32, val []float32, eta float64, out []float64) {
	leaf := t.PredictLeaf(feat, val)
	w := t.Nodes[leaf].Weights
	for k := range w {
		// The explicit conversion forbids fusing into an FMA (arm64),
		// keeping this walk bit-exact with FlatForest's pre-scaled weights.
		out[k] += float64(eta * w[k])
	}
}

// lookup binary-searches a sorted sparse row for feature f.
func lookup(feat []uint32, val []float32, f uint32) (float32, bool) {
	lo, hi := 0, len(feat)
	for lo < hi {
		mid := (lo + hi) / 2
		if feat[mid] < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(feat) && feat[lo] == f {
		return val[lo], true
	}
	return 0, false
}

// Forest is a trained GBDT model: an ordered set of trees plus the
// training configuration needed for inference.
type Forest struct {
	Trees        []*Tree   `json:"trees"`
	NumClass     int       `json:"num_class"`
	LearningRate float64   `json:"learning_rate"`
	InitScore    []float64 `json:"init_score"`
	Objective    string    `json:"objective"`
	NumFeature   int       `json:"num_feature"`
	// Splits, when non-nil, are the per-feature candidate split values the
	// model was trained against: Splits[f] is ascending (nil for features
	// with no observed values), and every interior node's SplitValue is
	// exactly Splits[Feature][SplitBin]. They are what the binned inference
	// engine (CompileBinned) needs to quantize incoming rows into bin codes
	// at serve time. Models encoded before this field decode with a nil
	// Splits and serve through float thresholds only.
	Splits [][]float32 `json:"splits,omitempty"`
}

// NewForest returns an empty forest.
func NewForest(numClass int, eta float64, initScore []float64, objective string, numFeature int) *Forest {
	return &Forest{
		NumClass:     numClass,
		LearningRate: eta,
		InitScore:    append([]float64(nil), initScore...),
		Objective:    objective,
		NumFeature:   numFeature,
	}
}

// Append adds a trained tree to the forest.
func (f *Forest) Append(t *Tree) { f.Trees = append(f.Trees, t) }

// NumTrees returns the number of trees.
func (f *Forest) NumTrees() int { return len(f.Trees) }

// PredictRow returns the raw scores (margins) of one sparse row.
func (f *Forest) PredictRow(feat []uint32, val []float32) []float64 {
	out := make([]float64, f.NumClass)
	copy(out, f.InitScore)
	for _, t := range f.Trees {
		t.Predict(feat, val, f.LearningRate, out)
	}
	return out
}

// PredictCSR returns the raw scores of every row of m, row-major with
// stride NumClass.
func (f *Forest) PredictCSR(m *sparse.CSR) []float64 {
	out := make([]float64, m.Rows()*f.NumClass)
	for i := 0; i < m.Rows(); i++ {
		row := out[i*f.NumClass : (i+1)*f.NumClass]
		copy(row, f.InitScore)
		feat, val := m.Row(i)
		for _, t := range f.Trees {
			t.Predict(feat, val, f.LearningRate, row)
		}
	}
	return out
}

// MarshalJSON-friendly round trip helpers.

// Encode serializes the forest to JSON.
func (f *Forest) Encode() ([]byte, error) { return json.Marshal(f) }

// DecodeForest parses a forest serialized with Encode and validates its
// structure, so downstream prediction (pointer walk or compiled flat
// engine) never routes through corrupt node links.
func DecodeForest(data []byte) (*Forest, error) {
	var f Forest
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("tree: decode forest: %w", err)
	}
	if f.NumClass <= 0 {
		return nil, fmt.Errorf("tree: decoded forest has num_class %d", f.NumClass)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// Validate checks the structural invariants prediction relies on: every
// tree is non-empty, interior child links point forward and in range, and
// every leaf carries NumClass weights.
func (f *Forest) Validate() error {
	for ti, t := range f.Trees {
		n := int32(len(t.Nodes))
		if n == 0 {
			return fmt.Errorf("tree: forest tree %d has no nodes", ti)
		}
		for i := int32(0); i < n; i++ {
			nd := &t.Nodes[i]
			if nd.IsLeaf() {
				if len(nd.Weights) != f.NumClass {
					return fmt.Errorf("tree: forest tree %d leaf %d has %d weights, want %d",
						ti, i, len(nd.Weights), f.NumClass)
				}
				continue
			}
			if nd.Left <= i || nd.Left >= n || nd.Right <= i || nd.Right >= n {
				return fmt.Errorf("tree: forest tree %d node %d has child links (%d,%d) outside (%d,%d)",
					ti, i, nd.Left, nd.Right, i, n)
			}
		}
	}
	return nil
}
