package tcptransport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vero/internal/cluster"
	"vero/internal/failpoint"
)

// Failpoints armed by the fault-injection tests and the crash harness.
const (
	// FailpointDial fires before each dial attempt while establishing the
	// mesh; an injected error is retried like a refused connection.
	FailpointDial = "cluster.tcp.dial"
	// FailpointRead fires before each frame read inside a collective.
	FailpointRead = "cluster.tcp.read"
	// FailpointWrite fires before each frame write inside a collective.
	FailpointWrite = "cluster.tcp.write"
)

const (
	defaultDialTimeout = 30 * time.Second
	defaultOpTimeout   = 30 * time.Second
	defaultMaxPayload  = 1 << 30
	maxDialBackoff     = 2 * time.Second
	// shadowChunk bounds a single shadow frame's payload so realizing a
	// multi-gigabyte charge never materializes one giant buffer.
	shadowChunk = 1 << 20
)

// Config describes one rank of a deployment.
type Config struct {
	// Rank is this process's rank in [0, len(Peers)).
	Rank int
	// Peers lists every rank's dialable host:port address, rank-ordered
	// and identical at every rank; Peers[Rank] is this process.
	Peers []string
	// Listen optionally overrides the listen address (default ":port"
	// with the port taken from Peers[Rank], so binding works even when
	// the advertised host resolves to a non-local interface).
	Listen string
	// Listener optionally supplies a pre-bound listener, in which case
	// Listen is ignored. Tests use it to bind port 0 before spawning
	// ranks; Connect takes ownership and closes it.
	Listener net.Listener
	// DialTimeout bounds the whole mesh establishment, including retrying
	// peers that have not started listening yet (default 30s).
	DialTimeout time.Duration
	// OpTimeout is the per-frame read/write deadline inside collectives
	// (default 30s). It bounds how long a dead peer can stall training.
	OpTimeout time.Duration
	// MaxPayload caps a single frame's payload (default 1 GiB).
	MaxPayload int
	// Fingerprint optionally identifies the dataset (or dataset shard
	// family) this rank trains on; it is exchanged in the hello handshake
	// and every rank must present the identical value, so a deployment
	// where one rank ingested different data fails at connect time instead
	// of silently training a diverged model. Zero means "no fingerprint"
	// and still must match (all ranks unset).
	Fingerprint uint32
}

// peerConn is one mesh connection. The write side is shared by the
// per-peer sender goroutines of an operation and serialized by wmu; the
// read side is only ever touched by one goroutine at a time (each
// operation runs one receiver per peer).
type peerConn struct {
	c   *cluster.CountingConn
	wmu sync.Mutex
}

// Transport is the socket implementation of cluster.Transport over a full
// TCP mesh (rank j dials every rank i < j; lower ranks accept).
type Transport struct {
	w, rank    int
	opTimeout  time.Duration
	maxPayload int
	dataFP     uint32
	ln         net.Listener
	conns      []*peerConn // indexed by peer rank; nil at self
	payload    atomic.Int64

	mu     sync.Mutex
	err    error
	closed bool
	seq    uint32
}

var _ cluster.Transport = (*Transport)(nil)

// Connect establishes the mesh and performs the hello handshake with every
// peer, validating that all ranks agree on the deployment size and peer
// list. It retries dials with exponential backoff until DialTimeout so
// ranks may start in any order.
func Connect(cfg Config) (*Transport, error) {
	w := len(cfg.Peers)
	if w == 0 {
		return nil, errors.New("tcptransport: empty peer list")
	}
	if cfg.Rank < 0 || cfg.Rank >= w {
		return nil, fmt.Errorf("tcptransport: rank %d outside peer list of %d", cfg.Rank, w)
	}
	t := &Transport{
		w:          w,
		rank:       cfg.Rank,
		opTimeout:  cfg.OpTimeout,
		maxPayload: cfg.MaxPayload,
		dataFP:     cfg.Fingerprint,
		conns:      make([]*peerConn, w),
	}
	if t.opTimeout <= 0 {
		t.opTimeout = defaultOpTimeout
	}
	if t.maxPayload <= 0 {
		t.maxPayload = defaultMaxPayload
	}
	if w == 1 {
		if cfg.Listener != nil {
			cfg.Listener.Close()
		}
		return t, nil
	}
	dialTimeout := cfg.DialTimeout
	if dialTimeout <= 0 {
		dialTimeout = defaultDialTimeout
	}

	ln := cfg.Listener
	if ln == nil {
		addr := cfg.Listen
		if addr == "" {
			_, port, err := net.SplitHostPort(cfg.Peers[cfg.Rank])
			if err != nil {
				return nil, fmt.Errorf("tcptransport: rank %d: own peer address %q: %w", cfg.Rank, cfg.Peers[cfg.Rank], err)
			}
			addr = ":" + port
		}
		var err error
		ln, err = net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("tcptransport: rank %d: listening on %q: %w", cfg.Rank, addr, err)
		}
	}
	t.ln = ln

	deadline := time.Now().Add(dialTimeout)
	hash := peersHash(cfg.Peers)
	// The listener has no deadline of its own; close it when the budget
	// runs out so a missing peer turns into an accept error, not a hang.
	watchdog := time.AfterFunc(dialTimeout, func() { ln.Close() })

	var wg sync.WaitGroup
	var acceptErr, dialErr error
	wg.Add(2)
	go func() { // higher ranks dial us
		defer wg.Done()
		for need := w - 1 - cfg.Rank; need > 0; need-- {
			conn, err := ln.Accept()
			if err != nil {
				acceptErr = fmt.Errorf("tcptransport: rank %d: accepting peers (%d still missing): %w", cfg.Rank, need, err)
				return
			}
			if err := t.handshakeAccept(conn, hash, deadline); err != nil {
				conn.Close()
				acceptErr = err
				return
			}
		}
	}()
	go func() { // we dial lower ranks
		defer wg.Done()
		for i := 0; i < cfg.Rank; i++ {
			if err := t.dialPeer(i, cfg.Peers[i], hash, deadline); err != nil {
				dialErr = err
				return
			}
		}
	}()
	wg.Wait()
	watchdog.Stop()
	if acceptErr != nil || dialErr != nil {
		t.Close()
		if dialErr != nil {
			return nil, dialErr
		}
		return nil, acceptErr
	}
	return t, nil
}

// peersHash fingerprints the deployment topology for the hello handshake.
func peersHash(peers []string) uint32 {
	crc := phaseCRC(peers[0])
	for _, p := range peers[1:] {
		crc = phaseCRC(fmt.Sprintf("%08x,%s", crc, p))
	}
	return crc
}

// helloPayload is the 12-byte handshake body: deployment size, sender
// rank, the peer-list fingerprint and the dataset fingerprint.
func helloPayload(w, rank int, hash, dataFP uint32) []byte {
	b := make([]byte, 12)
	binary.LittleEndian.PutUint16(b, uint16(w))
	binary.LittleEndian.PutUint16(b[2:], uint16(rank))
	binary.LittleEndian.PutUint32(b[4:], hash)
	binary.LittleEndian.PutUint32(b[8:], dataFP)
	return b
}

// exchangeHello sends our hello and validates the peer's reply on a fresh
// connection. wantRank < 0 accepts any higher rank (the acceptor side does
// not know who is connecting until the hello arrives).
func (t *Transport) exchangeHello(conn net.Conn, hash uint32, wantRank int, deadline time.Time, sendFirst bool) (int, error) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	conn.SetDeadline(deadline)
	defer conn.SetDeadline(time.Time{})
	send := func() error {
		buf := appendFrame(nil, &frame{Op: opHello, Rank: uint16(t.rank), Payload: helloPayload(t.w, t.rank, hash, t.dataFP)})
		_, err := conn.Write(buf)
		return err
	}
	if sendFirst {
		if err := send(); err != nil {
			return -1, fmt.Errorf("sending hello: %w", err)
		}
	}
	f, err := readFrame(conn, t.maxPayload)
	if err != nil {
		return -1, fmt.Errorf("reading hello: %w", err)
	}
	if f.Op != opHello || len(f.Payload) != 12 {
		return -1, fmt.Errorf("expected hello frame, got %s with %d-byte payload", f.Op, len(f.Payload))
	}
	peerW := int(binary.LittleEndian.Uint16(f.Payload))
	peerRank := int(binary.LittleEndian.Uint16(f.Payload[2:]))
	peerHash := binary.LittleEndian.Uint32(f.Payload[4:])
	peerFP := binary.LittleEndian.Uint32(f.Payload[8:])
	switch {
	case peerW != t.w:
		return -1, fmt.Errorf("peer rank %d believes the deployment has %d workers, this rank has %d", peerRank, peerW, t.w)
	case peerHash != hash:
		return -1, fmt.Errorf("peer rank %d has a different peer list (topology fingerprint %#x, ours %#x)", peerRank, peerHash, hash)
	case peerFP != t.dataFP:
		return -1, fmt.Errorf("peer rank %d ingested different data (dataset fingerprint %#x, ours %#x)", peerRank, peerFP, t.dataFP)
	case int(f.Rank) != peerRank:
		return -1, fmt.Errorf("hello frame rank %d contradicts its payload rank %d", f.Rank, peerRank)
	case wantRank >= 0 && peerRank != wantRank:
		return -1, fmt.Errorf("peer at rank %d's address claims rank %d", wantRank, peerRank)
	case wantRank < 0 && (peerRank <= t.rank || peerRank >= t.w):
		return -1, fmt.Errorf("accepted hello from rank %d, want a rank in (%d, %d)", peerRank, t.rank, t.w)
	}
	if !sendFirst {
		if err := send(); err != nil {
			return -1, fmt.Errorf("sending hello reply: %w", err)
		}
	}
	return peerRank, nil
}

// handshakeAccept validates one inbound connection and installs it.
func (t *Transport) handshakeAccept(conn net.Conn, hash uint32, deadline time.Time) error {
	rank, err := t.exchangeHello(conn, hash, -1, deadline, false)
	if err != nil {
		return fmt.Errorf("tcptransport: rank %d: handshake with inbound peer: %w", t.rank, err)
	}
	if t.conns[rank] != nil {
		return fmt.Errorf("tcptransport: rank %d: duplicate connection from rank %d", t.rank, rank)
	}
	t.conns[rank] = &peerConn{c: &cluster.CountingConn{Conn: conn}}
	return nil
}

// dialPeer connects to a lower rank, retrying with exponential backoff
// until the deadline so peers may start late. Handshake failures are
// terminal (the peer is up but misconfigured); connection failures retry.
func (t *Transport) dialPeer(i int, addr string, hash uint32, deadline time.Time) error {
	backoff := 50 * time.Millisecond
	for {
		var conn net.Conn
		err := failpoint.Inject(FailpointDial)
		if err == nil {
			d := net.Dialer{Deadline: deadline}
			conn, err = d.Dial("tcp", addr)
		}
		if err == nil {
			if _, herr := t.exchangeHello(conn, hash, i, deadline, true); herr != nil {
				conn.Close()
				return fmt.Errorf("tcptransport: rank %d: handshake with rank %d at %s: %w", t.rank, i, addr, herr)
			}
			t.conns[i] = &peerConn{c: &cluster.CountingConn{Conn: conn}}
			return nil
		}
		if !time.Now().Add(backoff).Before(deadline) {
			return fmt.Errorf("tcptransport: rank %d: dialing rank %d at %s: %w", t.rank, i, addr, err)
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxDialBackoff {
			backoff = maxDialBackoff
		}
	}
}

// Workers implements cluster.Transport.
func (t *Transport) Workers() int { return t.w }

// Rank implements cluster.Transport.
func (t *Transport) Rank() int { return t.rank }

// PayloadBytesSent implements cluster.Transport.
func (t *Transport) PayloadBytesSent() int64 { return t.payload.Load() }

// WireBytes implements cluster.Transport: everything this rank wrote,
// including frame headers, checksums and handshakes.
func (t *Transport) WireBytes() int64 {
	var total int64
	for _, pc := range t.conns {
		if pc != nil {
			total += pc.c.Written()
		}
	}
	return total
}

// Err implements cluster.Transport.
func (t *Transport) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close implements cluster.Transport. Peers blocked on this rank will fail
// their reads and latch their own errors — a deliberate shutdown and a
// crash look the same from the outside, which is the point.
func (t *Transport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.closeConns()
	return nil
}

func (t *Transport) closeConns() {
	if t.ln != nil {
		t.ln.Close()
	}
	for _, pc := range t.conns {
		if pc != nil {
			pc.c.Close()
		}
	}
}

// fail latches the transport's sticky error and tears down the mesh so
// every pending and future operation fails fast instead of hanging on a
// peer that will never answer. The first error wins; it is what Err (and
// therefore the trainer's tree-boundary check) reports.
func (t *Transport) fail(err error) error {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	first := t.err
	t.mu.Unlock()
	t.closeConns()
	return first
}

// startOp admits one collective, handing it the next sequence number.
// Operations are serialized by the caller (the trainer's collectives run
// one at a time), so the sequence also orders frames on every connection.
func (t *Transport) startOp() (uint32, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return 0, t.err
	}
	if t.closed {
		return 0, errors.New("tcptransport: transport closed")
	}
	t.seq++
	return t.seq, nil
}

// send writes one frame to peer j, counting its payload bytes.
func (t *Transport) send(j int, o op, pc, seq uint32, phase string, payload []byte) error {
	wrap := func(err error) error {
		return fmt.Errorf("tcptransport: rank %d: writing %s to rank %d in phase %q: %w", t.rank, o, j, phase, err)
	}
	if err := failpoint.Inject(FailpointWrite); err != nil {
		return wrap(err)
	}
	conn := t.conns[j]
	buf := appendFrame(make([]byte, 0, headerSize+len(payload)+trailerSize),
		&frame{Op: o, Rank: uint16(t.rank), PhaseCRC: pc, Seq: seq, Payload: payload})
	conn.wmu.Lock()
	conn.c.SetWriteDeadline(time.Now().Add(t.opTimeout))
	_, err := conn.c.Write(buf)
	conn.wmu.Unlock()
	if err != nil {
		return wrap(err)
	}
	t.payload.Add(int64(len(payload)))
	return nil
}

// recv reads one frame from peer j and validates that it is exactly the
// frame the SPMD schedule says comes next: right op, right sender, right
// phase, right sequence number. Anything else means the ranks diverged.
func (t *Transport) recv(j int, o op, pc, seq uint32, phase string) ([]byte, error) {
	wrap := func(err error) error {
		return fmt.Errorf("tcptransport: rank %d: reading %s from rank %d in phase %q: %w", t.rank, o, j, phase, err)
	}
	if err := failpoint.Inject(FailpointRead); err != nil {
		return nil, wrap(err)
	}
	conn := t.conns[j]
	conn.c.SetReadDeadline(time.Now().Add(t.opTimeout))
	f, err := readFrame(conn.c, t.maxPayload)
	if err != nil {
		return nil, wrap(err)
	}
	if f.Op != o || int(f.Rank) != j || f.PhaseCRC != pc || f.Seq != seq {
		return nil, wrap(fmt.Errorf("desynchronized peer: got %s frame (sender %d, phase %#x, seq %d), want %s (phase %#x, seq %d)",
			f.Op, f.Rank, f.PhaseCRC, f.Seq, o, pc, seq))
	}
	return f.Payload, nil
}

// runAll runs the per-peer sender and receiver bodies of one collective
// concurrently — concurrency is what makes the exchange deadlock-free
// regardless of kernel socket buffer sizes — and latches the first error.
func (t *Transport) runAll(fns []func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for i, fn := range fns {
		go func(i int, fn func() error) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return t.fail(err)
		}
	}
	return nil
}

// AllReduce implements cluster.Transport: a direct-exchange
// reduce-scatter (every rank owns one even segment, receives W-1
// contributions for it and reduces them in rank order) followed by an
// all-gather of the reduced segments. Per-rank wire volume is
// (n - seg) + (W-1)*seg payload bytes, summing to the charged 2(W-1)n
// across the deployment for any n.
func (t *Transport) AllReduce(phase string, buf []float64) error {
	if t.w == 1 {
		return nil
	}
	seq, err := t.startOp()
	if err != nil {
		return err
	}
	pc := phaseCRC(phase)
	bounds := cluster.EvenBounds(len(buf), t.w)
	seg := func(r int) []float64 { return buf[bounds[r]:bounds[r+1]] }
	mine := seg(t.rank)

	contribs := make([][]byte, t.w)
	var fns []func() error
	for j := 0; j < t.w; j++ {
		if j == t.rank {
			continue
		}
		fns = append(fns,
			func() error { return t.send(j, opContrib, pc, seq, phase, floatBytes(seg(j))) },
			func() error {
				p, err := t.recv(j, opContrib, pc, seq, phase)
				if err != nil {
					return err
				}
				if len(p) != 8*len(mine) {
					return fmt.Errorf("tcptransport: rank %d: phase %q: rank %d contributed %d bytes to a %d-element segment", t.rank, phase, j, len(p), len(mine))
				}
				contribs[j] = p
				return nil
			})
	}
	if err := t.runAll(fns); err != nil {
		return err
	}
	reduceRankOrder(mine, contribs, t.rank)

	out := floatBytes(mine)
	fns = fns[:0]
	for j := 0; j < t.w; j++ {
		if j == t.rank {
			continue
		}
		fns = append(fns,
			func() error { return t.send(j, opResult, pc, seq, phase, out) },
			func() error {
				p, err := t.recv(j, opResult, pc, seq, phase)
				if err != nil {
					return err
				}
				dst := seg(j)
				if len(p) != 8*len(dst) {
					return fmt.Errorf("tcptransport: rank %d: phase %q: rank %d sent a %d-byte segment, want %d", t.rank, phase, j, len(p), 8*len(dst))
				}
				floatsInto(dst, p)
				return nil
			})
	}
	return t.runAll(fns)
}

// ReduceScatter implements cluster.Transport by direct exchange: each
// rank sends every segment it does not own to the segment's owner, which
// reduces the W contributions in rank order. Total payload equals the
// charged (W-1)n for any bounds.
func (t *Transport) ReduceScatter(phase string, buf []float64, bounds []int) error {
	if t.w == 1 {
		return nil
	}
	seq, err := t.startOp()
	if err != nil {
		return err
	}
	pc := phaseCRC(phase)
	segs := len(bounds) - 1
	if segs > t.w || bounds[segs] != len(buf) || bounds[0] != 0 {
		return t.fail(fmt.Errorf("tcptransport: rank %d: phase %q: bounds %v do not partition %d elements over %d workers", t.rank, phase, bounds, len(buf), t.w))
	}

	var fns []func() error
	for s := 0; s < segs; s++ {
		if s == t.rank {
			continue
		}
		fns = append(fns, func() error {
			return t.send(s, opContrib, pc, seq, phase, floatBytes(buf[bounds[s]:bounds[s+1]]))
		})
	}
	var contribs [][]byte
	var mine []float64
	if t.rank < segs {
		mine = buf[bounds[t.rank]:bounds[t.rank+1]]
		contribs = make([][]byte, t.w)
		for j := 0; j < t.w; j++ {
			if j == t.rank {
				continue
			}
			fns = append(fns, func() error {
				p, err := t.recv(j, opContrib, pc, seq, phase)
				if err != nil {
					return err
				}
				if len(p) != 8*len(mine) {
					return fmt.Errorf("tcptransport: rank %d: phase %q: rank %d contributed %d bytes to a %d-element segment", t.rank, phase, j, len(p), len(mine))
				}
				contribs[j] = p
				return nil
			})
		}
	}
	if err := t.runAll(fns); err != nil {
		return err
	}
	if t.rank < segs {
		reduceRankOrder(mine, contribs, t.rank)
	}
	return nil
}

// Gather implements cluster.Transport: every rank sends its whole buffer
// to the root, which reduces in rank order. (W-1)n payload bytes total.
func (t *Transport) Gather(phase string, buf []float64, root int) error {
	if t.w == 1 {
		return nil
	}
	seq, err := t.startOp()
	if err != nil {
		return err
	}
	pc := phaseCRC(phase)
	if t.rank != root {
		if err := t.send(root, opContrib, pc, seq, phase, floatBytes(buf)); err != nil {
			return t.fail(err)
		}
		return nil
	}
	contribs := make([][]byte, t.w)
	var fns []func() error
	for j := 0; j < t.w; j++ {
		if j == t.rank {
			continue
		}
		fns = append(fns, func() error {
			p, err := t.recv(j, opContrib, pc, seq, phase)
			if err != nil {
				return err
			}
			if len(p) != 8*len(buf) {
				return fmt.Errorf("tcptransport: rank %d: phase %q: rank %d contributed %d bytes to a %d-element gather", t.rank, phase, j, len(p), len(buf))
			}
			contribs[j] = p
			return nil
		})
	}
	if err := t.runAll(fns); err != nil {
		return err
	}
	reduceRankOrder(buf, contribs, t.rank)
	return nil
}

// AllGather implements cluster.Transport: every rank sends its record to
// every peer. W(W-1)b payload bytes total, matching AllGatherSmall.
func (t *Transport) AllGather(phase string, recs [][]byte) error {
	if t.w == 1 {
		return nil
	}
	if len(recs) != t.w {
		return t.fail(fmt.Errorf("tcptransport: rank %d: phase %q: %d records for %d workers", t.rank, phase, len(recs), t.w))
	}
	seq, err := t.startOp()
	if err != nil {
		return err
	}
	pc := phaseCRC(phase)
	own := recs[t.rank]
	var fns []func() error
	for j := 0; j < t.w; j++ {
		if j == t.rank {
			continue
		}
		fns = append(fns,
			func() error { return t.send(j, opRecord, pc, seq, phase, own) },
			func() error {
				p, err := t.recv(j, opRecord, pc, seq, phase)
				if err != nil {
					return err
				}
				if len(p) != len(recs[j]) {
					return fmt.Errorf("tcptransport: rank %d: phase %q: rank %d sent a %d-byte record, want %d", t.rank, phase, j, len(p), len(recs[j]))
				}
				copy(recs[j], p)
				return nil
			})
	}
	return t.runAll(fns)
}

// Broadcast implements cluster.Transport: the root sends buf to every
// peer; peers overwrite their buf with the root's bytes. (W-1)·len(buf)
// payload bytes total, matching the charged binomial-broadcast volume.
func (t *Transport) Broadcast(phase string, buf []byte, root int) error {
	if t.w == 1 {
		return nil
	}
	if root < 0 || root >= t.w {
		return t.fail(fmt.Errorf("tcptransport: rank %d: phase %q: broadcast root %d outside deployment of %d", t.rank, phase, root, t.w))
	}
	seq, err := t.startOp()
	if err != nil {
		return err
	}
	pc := phaseCRC(phase)
	if t.rank == root {
		var fns []func() error
		for j := 0; j < t.w; j++ {
			if j == t.rank {
				continue
			}
			fns = append(fns, func() error { return t.send(j, opBcast, pc, seq, phase, buf) })
		}
		return t.runAll(fns)
	}
	p, err := t.recv(root, opBcast, pc, seq, phase)
	if err != nil {
		return t.fail(err)
	}
	if len(p) != len(buf) {
		return t.fail(fmt.Errorf("tcptransport: rank %d: phase %q: rank %d broadcast %d bytes, want %d", t.rank, phase, root, len(p), len(buf)))
	}
	copy(buf, p)
	return nil
}

// Shadow implements cluster.Transport: send[i][j] zero bytes move from
// rank i to rank j in chunks of at most shadowChunk, so charge-only
// collectives produce exactly their accounted volume as measurable wire
// traffic. The matrix is identical at every rank, which is how receivers
// know how much to expect.
func (t *Transport) Shadow(phase string, send [][]int64) error {
	if t.w == 1 {
		return nil
	}
	if len(send) != t.w {
		return t.fail(fmt.Errorf("tcptransport: rank %d: phase %q: shadow matrix has %d rows for %d workers", t.rank, phase, len(send), t.w))
	}
	seq, err := t.startOp()
	if err != nil {
		return err
	}
	pc := phaseCRC(phase)
	var fns []func() error
	for j := 0; j < t.w; j++ {
		if j == t.rank {
			continue
		}
		if out := send[t.rank][j]; out > 0 {
			fns = append(fns, func() error {
				zeros := make([]byte, min(out, shadowChunk))
				for rem := out; rem > 0; rem -= int64(len(zeros)) {
					if rem < int64(len(zeros)) {
						zeros = zeros[:rem]
					}
					if err := t.send(j, opShadow, pc, seq, phase, zeros); err != nil {
						return err
					}
				}
				return nil
			})
		}
		if in := send[j][t.rank]; in > 0 {
			fns = append(fns, func() error {
				for rem := in; rem > 0; {
					p, err := t.recv(j, opShadow, pc, seq, phase)
					if err != nil {
						return err
					}
					want := min(rem, shadowChunk)
					if int64(len(p)) != want {
						return fmt.Errorf("tcptransport: rank %d: phase %q: shadow chunk from rank %d is %d bytes, want %d", t.rank, phase, j, len(p), want)
					}
					rem -= want
				}
				return nil
			})
		}
	}
	return t.runAll(fns)
}

// reduceRankOrder reduces the owner's local segment and the peers'
// contributions in rank order starting from zero — bit-identical to the
// simulation's sumLocalInto. mine holds the local contribution on entry
// and the reduced segment on return; contribs[j] is rank j's serialized
// contribution (nil at rank `self`).
func reduceRankOrder(mine []float64, contribs [][]byte, self int) {
	acc := make([]float64, len(mine))
	for r := range contribs {
		if r == self {
			for i, v := range mine {
				acc[i] += v
			}
			continue
		}
		p := contribs[r]
		for i := range acc {
			acc[i] += math.Float64frombits(binary.LittleEndian.Uint64(p[i*8:]))
		}
	}
	copy(mine, acc)
}

// floatBytes serializes floats little-endian, the wire float encoding.
func floatBytes(xs []float64) []byte {
	b := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(x))
	}
	return b
}

// floatsInto deserializes the wire float encoding into dst.
func floatsInto(dst []float64, b []byte) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}
