// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 5, 6 and the appendix) on the simulated cluster.
//
// Each generator returns structured rows; cmd/benchtab renders them as the
// paper-style tables and bench_test.go wraps them in testing.B benchmarks.
// Workload sizes are the paper's shapes scaled to one machine (see
// internal/datasets); a scale factor stretches or shrinks instance counts
// for quick runs.
package experiments

import (
	"fmt"
	"strings"

	"vero/internal/cluster"
	"vero/internal/core"
	"vero/internal/datasets"
	"vero/internal/systems"
)

// Point is one measured bar of a breakdown figure: per-tree computation
// and communication time plus peak memory, for one system on one workload.
type Point struct {
	Workload string
	System   string
	// CompSec and CommSec are per-tree averages (seconds).
	CompSec float64
	CommSec float64
	// CommMB is the per-tree communication volume (MB), the deterministic
	// quantity behind CommSec.
	CommMB float64
	// HistMB and DataMB are peak per-worker memory (MB).
	HistMB float64
	DataMB float64
}

// scaleN applies the scale factor with a floor.
func scaleN(n int, scale float64) int {
	if scale <= 0 {
		scale = 1
	}
	v := int(float64(n) * scale)
	if v < 200 {
		v = 200
	}
	return v
}

// perTree trains the system and reports per-tree training costs, excluding
// preparation (the paper's Figure 10 reports "time breakdown per tree").
func perTree(ds *datasets.Dataset, sys systems.System, base core.Config, w int, net cluster.NetworkModel) (Point, error) {
	cl := cluster.New(w, net)
	res, err := systems.Train(cl, ds, sys, base)
	if err != nil {
		return Point{}, err
	}
	comp, comm, bytes := sumPhases(cl, "train.")
	trees := float64(len(res.PerTreeSeconds))
	return Point{
		System:  string(sys),
		CompSec: comp / trees,
		CommSec: comm / trees,
		CommMB:  float64(bytes) / trees / (1 << 20),
		HistMB:  float64(cl.Stats().Mem("histogram").MaxPeak()) / (1 << 20),
		DataMB:  float64(cl.Stats().Mem("data").MaxPeak()) / (1 << 20),
	}, nil
}

// sumPhases sums computation seconds, communication seconds and bytes over
// phases with the given label prefix.
func sumPhases(cl *cluster.Cluster, prefix string) (comp, comm float64, bytes int64) {
	for _, name := range cl.Stats().PhaseNames() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		p := cl.Stats().Phase(name)
		comp += p.CompSeconds
		comm += p.CommSeconds
		bytes += p.TotalBytes()
	}
	return comp, comm, bytes
}

// synthetic builds a Figure 10 workload: the paper's generator with
// p = phi = 0.2 unless density is overridden.
func synthetic(n, d, c int, density float64, seed int64) (*datasets.Dataset, error) {
	return datasets.Synthetic(datasets.SyntheticConfig{
		N: n, D: d, C: c,
		InformativeRatio: 0.2,
		Density:          density,
		Seed:             seed,
	})
}

// quadrantConfig is the Section 5.1 hyper-parameter set scaled for
// one-machine runs: the paper uses T=100/L=8/q=20; per-tree costs are what
// the figures report, so two trees per configuration suffice.
func quadrantConfig(layers int) core.Config {
	return core.Config{Trees: 2, Layers: layers, Splits: 20, LearningRate: 0.3}
}

func fmtCount(n int) string {
	switch {
	case n >= 1_000_000:
		return fmt.Sprintf("%gM", float64(n)/1e6)
	case n >= 1000:
		return fmt.Sprintf("%gK", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
