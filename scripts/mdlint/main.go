// Command mdlint checks that every relative markdown link in the given
// files (or .md files under the given directories) points at a path that
// exists in the repository. External links (http, https, mailto) are not
// fetched — CI has no business depending on the network — and bare
// fragments (#heading) are skipped.
//
// Usage:
//
//	go run ./scripts/mdlint README.md docs
//
// It exits nonzero listing each broken link as file:line: target.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target). The
// target group stops at the first ')' or space (titles are rare enough
// that "](x y)" is treated as target "x").
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdlint <file-or-dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdlint: %v\n", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "mdlint: %v\n", err)
			os.Exit(2)
		}
	}
	broken := 0
	for _, f := range files {
		broken += lintFile(f)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "mdlint: %d broken links\n", broken)
		os.Exit(1)
	}
}

// lintFile checks one markdown file's relative links, returning the
// number broken.
func lintFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdlint: %v\n", err)
		return 1
	}
	dir := filepath.Dir(path)
	broken := 0
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skippable(target) {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.Join(dir, target)); err != nil {
				fmt.Printf("%s:%d: broken link %s\n", path, i+1, m[1])
				broken++
			}
		}
	}
	return broken
}

// skippable reports whether the link target is external or a bare
// fragment — out of scope for an offline existence check.
func skippable(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
