package experiments

import (
	"testing"

	"vero/internal/partition"
	"vero/internal/systems"
)

// testScale keeps instance counts small so the suite stays quick; shape
// assertions are on deterministic quantities (simulated communication,
// byte counts, memory gauges) wherever possible.
const testScale = 0.15

func commOf(pts []Point, workload string, sys systems.System) float64 {
	for _, p := range pts {
		if p.Workload == workload && p.System == string(sys) {
			return p.CommSec
		}
	}
	return -1
}

func TestFig10aShape(t *testing.T) {
	pts, err := Fig10a(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d points", len(pts))
	}
	// Vertical partitioning's communication grows with N (placement
	// bitmaps are proportional to N) while horizontal's stays flat (the
	// histogram volume depends only on D, q, C). The absolute crossover
	// the paper shows needs N in the millions; at laptop N the slopes are
	// the reproducible shape (see EXPERIMENTS.md).
	first := pts[0].Workload
	last := pts[len(pts)-1].Workload
	vFirst, vLast := commMBOf(pts, first, systems.Vero), commMBOf(pts, last, systems.Vero)
	if vLast < 1.5*vFirst {
		t.Fatalf("vero comm volume not growing with N: %v -> %v", vFirst, vLast)
	}
	hFirst, hLast := commMBOf(pts, first, systems.LightGBM), commMBOf(pts, last, systems.LightGBM)
	if hLast > 1.5*hFirst {
		t.Fatalf("lightgbm comm volume grew with N: %v -> %v", hFirst, hLast)
	}
}

func commMBOf(pts []Point, workload string, sys systems.System) float64 {
	for _, p := range pts {
		if p.Workload == workload && p.System == string(sys) {
			return p.CommMB
		}
	}
	return -1
}

func TestFig10bShape(t *testing.T) {
	pts, err := Fig10b(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Horizontal comm grows ~linearly with D; vertical comm stays flat.
	lgbLow := commOf(pts, "D=500", systems.LightGBM)
	lgbHigh := commOf(pts, "D=2K", systems.LightGBM)
	veroLow := commOf(pts, "D=500", systems.Vero)
	veroHigh := commOf(pts, "D=2K", systems.Vero)
	if lgbHigh < 2.5*lgbLow {
		t.Fatalf("lightgbm comm not growing with D: %v -> %v", lgbLow, lgbHigh)
	}
	if veroHigh > 1.5*veroLow {
		t.Fatalf("vero comm grew with D: %v -> %v", veroLow, veroHigh)
	}
	if veroHigh >= lgbHigh {
		t.Fatalf("high-dim: vero comm %v not below lightgbm %v", veroHigh, lgbHigh)
	}
}

func TestFig10cShape(t *testing.T) {
	// Depth shape needs enough instances that deep nodes stay splittable;
	// run this panel at a larger scale than the others.
	pts, err := Fig10c(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Horizontal comm nearly doubles per extra layer; vertical grows
	// linearly.
	l6 := commOf(pts, "L=6", systems.LightGBM)
	l8 := commOf(pts, "L=8", systems.LightGBM)
	if l8 < 2*l6 {
		t.Fatalf("lightgbm comm not exponential in depth: %v -> %v", l6, l8)
	}
	v6 := commOf(pts, "L=6", systems.Vero)
	v8 := commOf(pts, "L=8", systems.Vero)
	if v8 > 2*v6 {
		t.Fatalf("vero comm grew superlinearly with depth: %v -> %v", v6, v8)
	}
}

func TestFig10dShape(t *testing.T) {
	pts, err := Fig10d(testScale)
	if err != nil {
		t.Fatal(err)
	}
	c3 := commOf(pts, "C=3", systems.LightGBM)
	c10 := commOf(pts, "C=10", systems.LightGBM)
	if c10 < 2*c3 {
		t.Fatalf("lightgbm comm not proportional to classes: %v -> %v", c3, c10)
	}
	v3 := commOf(pts, "C=3", systems.Vero)
	v10 := commOf(pts, "C=10", systems.Vero)
	if v10 > 1.5*v3 {
		t.Fatalf("vero comm grew with classes: %v -> %v", v3, v10)
	}
}

func TestFig10efMemoryShape(t *testing.T) {
	pts, err := Fig10f(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// Horizontal histogram memory dominates vertical's (W=4) and grows
	// with C; data memory is comparable.
	for _, c := range []string{"C=3", "C=10"} {
		var lgb, vero Point
		for _, p := range pts {
			if p.Workload == c && p.System == string(systems.LightGBM) {
				lgb = p
			}
			if p.Workload == c && p.System == string(systems.Vero) {
				vero = p
			}
		}
		if lgb.HistMB < 3*vero.HistMB {
			t.Fatalf("%s: horizontal hist mem %vMB not >= 3x vertical %vMB", c, lgb.HistMB, vero.HistMB)
		}
	}
}

func TestFig10ghRun(t *testing.T) {
	// Storage-pattern panels: both systems must run; QD3 and QD4 share
	// the vertical communication profile.
	g, err := Fig10g(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 8 {
		t.Fatalf("Fig10g has %d points", len(g))
	}
	h, err := Fig10h(testScale)
	if err != nil {
		t.Fatal(err)
	}
	// At the largest N, row-store computation beats column-store (binary
	// searches + branch misses), Section 5.2.2.
	last := h[len(h)-1].Workload
	var qd3, qd4 float64
	for _, p := range h {
		if p.Workload == last {
			if p.System == string(systems.QD3Hybrid) {
				qd3 = p.CompSec
			} else {
				qd4 = p.CompSec
			}
		}
	}
	if qd4 > qd3 {
		t.Logf("note: QD4 comp (%v) above QD3 (%v) at this scale", qd4, qd3)
	}
}

func TestTable3ShapeHighDim(t *testing.T) {
	if testing.Short() {
		t.Skip("table 3 sweep in short mode")
	}
	rows, err := Table3(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string]Table3Row{}
	for _, r := range rows {
		byName[r.Dataset] = r
	}
	// DimBoost must be absent from the multi-class rows (Table 3's "-").
	if _, ok := byName["rcv1-multi"].Errs[systems.DimBoost]; !ok {
		t.Fatal("dimboost ran a multi-class dataset")
	}
	// High-dimensional sparse: XGBoost is the slowest of the four
	// (Table 3: 17-19x Vero).
	for _, name := range []string{"rcv1", "synthesis"} {
		r := byName[name]
		if r.Relative[systems.XGBoost] < r.Relative[systems.LightGBM] {
			t.Errorf("%s: xgboost (%.2fx) faster than lightgbm (%.2fx)",
				name, r.Relative[systems.XGBoost], r.Relative[systems.LightGBM])
		}
		if r.Relative[systems.XGBoost] <= 1 {
			t.Errorf("%s: xgboost (%.2fx) not slower than vero", name, r.Relative[systems.XGBoost])
		}
	}
	for _, r := range rows {
		if v, ok := r.Seconds[systems.Vero]; !ok || v <= 0 {
			t.Errorf("%s: missing vero time", r.Dataset)
		}
	}
}

func TestFig11CurvesImprove(t *testing.T) {
	curves, err := Fig11("susy", 6, testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("got %d curves", len(curves))
	}
	for _, c := range curves {
		if c.Err != "" {
			t.Fatalf("%s failed: %s", c.System, c.Err)
		}
		if len(c.Points) != 6 {
			t.Fatalf("%s has %d points", c.System, len(c.Points))
		}
		first := c.Points[0]
		last := c.Points[len(c.Points)-1]
		if last.Metric < first.Metric-0.02 {
			t.Errorf("%s: metric degraded %v -> %v", c.System, first.Metric, last.Metric)
		}
		// The curve must actually converge: well above coin-flip AUC.
		if last.Metric < 0.6 {
			t.Errorf("%s: final AUC %v, curve never improved", c.System, last.Metric)
		}
		if last.Seconds <= first.Seconds {
			t.Errorf("%s: time not increasing", c.System)
		}
	}
}

func TestTable4Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("industrial sweep in short mode")
	}
	rows, err := Table4(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Seconds[systems.Vero] <= 0 {
			t.Errorf("%s: no vero time", r.Dataset)
		}
	}
	// Age (multi-class, high-dim): Vero beats XGBoost clearly (paper:
	// 8.3x).
	for _, r := range rows {
		if r.Dataset == "age" && r.Seconds[systems.XGBoost] < r.Seconds[systems.Vero] {
			t.Errorf("age: xgboost (%v) faster than vero (%v)",
				r.Seconds[systems.XGBoost], r.Seconds[systems.Vero])
		}
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		nv := r.RepartitionSec[partition.VariantNaive]
		cp := r.RepartitionSec[partition.VariantCompressed]
		vo := r.RepartitionSec[partition.VariantBlockified]
		if !(nv > cp && cp > vo) {
			t.Errorf("%s: repartition times not decreasing: naive=%v compress=%v vero=%v",
				r.Dataset, nv, cp, vo)
		}
		if r.RepartitionMB[partition.VariantNaive] <= r.RepartitionMB[partition.VariantBlockified] {
			t.Errorf("%s: no volume reduction", r.Dataset)
		}
	}
}

func TestTable6Speedup(t *testing.T) {
	rows, err := Table6(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Workers == 2 && r.Speedup != 1 {
			t.Errorf("%s: base speedup %v", r.Dataset, r.Speedup)
		}
	}
}

func TestTable7Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("yggdrasil sweep in short mode")
	}
	rows, err := Table7(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, sys := range []systems.System{systems.Yggdrasil, systems.QD3Hybrid, systems.Vero} {
			if r.Seconds[sys] <= 0 {
				t.Errorf("%s: missing %s", r.Dataset, sys)
			}
		}
	}
}

func TestTable8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("lightgbm sweep in short mode")
	}
	rows, err := Table8(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Feature-parallel holds the full dataset per worker.
		if r.DataMB[systems.LightGBMFP] < 2*r.DataMB[systems.LightGBM] {
			t.Errorf("%s: FP data memory %vMB not above DP %vMB",
				r.Dataset, r.DataMB[systems.LightGBMFP], r.DataMB[systems.LightGBM])
		}
	}
}

func TestAblations(t *testing.T) {
	sub, err := AblationSubtraction(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if sub.BaselineSec <= 0 || sub.AblatedSec <= 0 {
		t.Fatalf("subtraction ablation: %+v", sub)
	}
	comp, err := AblationCompression(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if comp.AblatedSec <= comp.BaselineSec {
		t.Fatalf("compression ablation: naive %v not slower than blockified %v",
			comp.AblatedSec, comp.BaselineSec)
	}
	lb, err := AblationLoadBalance(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if lb.BaselineSec > lb.AblatedSec {
		t.Fatalf("greedy grouping (%v) worse than round-robin (%v)", lb.BaselineSec, lb.AblatedSec)
	}
}
