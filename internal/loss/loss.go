// Package loss implements the second-order (Newton) training objectives of
// the paper — square loss, logistic loss, softmax — and the evaluation
// metrics used in its end-to-end experiments (AUC, accuracy, RMSE,
// log-loss).
//
// GBDT per the paper (Section 2.1.1) optimizes a second-order Taylor
// expansion of the objective: each instance contributes a first-order
// gradient g and second-order gradient h, and for multi-classification the
// gradient is a C-dimensional vector — which is what makes histogram size
// proportional to the number of classes (Section 3.1.1).
package loss

import (
	"fmt"
	"math"
)

// Objective computes per-instance first- and second-order gradients.
// Implementations must be safe for concurrent use by multiple workers.
type Objective interface {
	// Name returns the canonical objective name ("square", "logistic",
	// "softmax").
	Name() string
	// NumClass returns the gradient dimension C: 1 for regression and
	// binary classification, the number of classes for multi-class.
	NumClass() int
	// GradHess writes the gradient and hessian of one instance into grad
	// and hess (length NumClass). pred holds the raw (margin) scores.
	GradHess(pred []float64, label float32, grad, hess []float64)
	// InitScore returns the constant initial raw score per class that the
	// boosting process starts from.
	InitScore(labels []float32) []float64
}

// Square is the regression objective l(y, yhat) = (y - yhat)^2 / 2.
type Square struct{}

// Name implements Objective.
func (Square) Name() string { return "square" }

// NumClass implements Objective.
func (Square) NumClass() int { return 1 }

// GradHess implements Objective: g = yhat - y, h = 1.
func (Square) GradHess(pred []float64, label float32, grad, hess []float64) {
	grad[0] = pred[0] - float64(label)
	hess[0] = 1
}

// InitScore implements Objective: the label mean.
func (Square) InitScore(labels []float32) []float64 {
	if len(labels) == 0 {
		return []float64{0}
	}
	var sum float64
	for _, y := range labels {
		sum += float64(y)
	}
	return []float64{sum / float64(len(labels))}
}

// Logistic is the binary-classification objective with labels in {0, 1}.
type Logistic struct{}

// Name implements Objective.
func (Logistic) Name() string { return "logistic" }

// NumClass implements Objective.
func (Logistic) NumClass() int { return 1 }

// GradHess implements Objective: with p = sigmoid(pred), g = p - y and
// h = p(1-p), the standard LogitBoost second-order statistics.
func (Logistic) GradHess(pred []float64, label float32, grad, hess []float64) {
	p := Sigmoid(pred[0])
	grad[0] = p - float64(label)
	h := p * (1 - p)
	if h < 1e-16 {
		h = 1e-16
	}
	hess[0] = h
}

// InitScore implements Objective: zero margin (p = 0.5). Starting from the
// prior log-odds is a common variant; zero keeps parity with XGBoost's
// default base_score.
func (Logistic) InitScore([]float32) []float64 { return []float64{0} }

// Softmax is the multi-classification objective over C classes with labels
// in {0, ..., C-1}.
type Softmax struct {
	// C is the number of classes; must be >= 2.
	C int
}

// Name implements Objective.
func (s Softmax) Name() string { return "softmax" }

// NumClass implements Objective.
func (s Softmax) NumClass() int { return s.C }

// GradHess implements Objective: with p = softmax(pred),
// g_k = p_k - 1{y=k} and h_k = 2 p_k (1 - p_k) (the factor 2 matches the
// diagonal upper bound used by XGBoost and LightGBM).
func (s Softmax) GradHess(pred []float64, label float32, grad, hess []float64) {
	// Numerically stable softmax.
	maxv := pred[0]
	for _, v := range pred[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float64
	for k := 0; k < s.C; k++ {
		grad[k] = math.Exp(pred[k] - maxv) // reuse grad as scratch for exp
		sum += grad[k]
	}
	y := int(label)
	for k := 0; k < s.C; k++ {
		p := grad[k] / sum
		target := 0.0
		if k == y {
			target = 1.0
		}
		grad[k] = p - target
		h := 2 * p * (1 - p)
		if h < 1e-16 {
			h = 1e-16
		}
		hess[k] = h
	}
}

// InitScore implements Objective: zero margins (uniform class prior).
func (s Softmax) InitScore([]float32) []float64 { return make([]float64, s.C) }

// ByName returns the objective with the given name. numClass is only used
// by "softmax".
func ByName(name string, numClass int) (Objective, error) {
	switch name {
	case "square":
		return Square{}, nil
	case "logistic":
		return Logistic{}, nil
	case "softmax":
		if numClass < 2 {
			return nil, fmt.Errorf("loss: softmax needs >= 2 classes, got %d", numClass)
		}
		return Softmax{C: numClass}, nil
	default:
		return nil, fmt.Errorf("loss: unknown objective %q", name)
	}
}

// Sigmoid returns 1 / (1 + exp(-x)) computed stably.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
