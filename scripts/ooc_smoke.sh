#!/usr/bin/env bash
# Out-of-core training smoke test: train the same `.vbin` cache image
# twice through a real `veroctl` — once fully in memory, once streamed
# through the mmap-backed view under a small memory budget with a hard
# `GOMEMLIMIT` backstop — and require the two model files to be
# byte-identical. Also asserts the streamed run reports its peak heap
# and that an armed `ingest.mmap.read` failpoint aborts with a
# descriptive error instead of producing a model. Run from the repo
# root; used by CI and reproducible locally with
# `bash scripts/ooc_smoke.sh`.
set -euo pipefail

DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

TRAIN_ARGS=(-data "$DIR/train.vbin" -classes 2 -trees 12 -layers 5 -workers 4 -system vero)

fail() { echo "FAIL: $1"; shift; for f in "$@"; do echo "--- $f:"; cat "$f"; done; exit 1; }

echo "== build"
go build -o "$DIR/veroctl" ./cmd/veroctl
go build -o "$DIR/datagen" ./cmd/datagen

echo "== generate a .vbin cache image"
"$DIR/datagen" -n 20000 -d 300 -c 2 -density 0.3 -informative 0.3 \
  -format vbin -out "$DIR/train.vbin"

echo "== in-memory reference run"
"$DIR/veroctl" train "${TRAIN_ARGS[@]}" -model "$DIR/mem.json" >"$DIR/mem.log" \
  || fail "in-memory run failed" "$DIR/mem.log"

echo "== streamed run under a 32 MiB budget (GOMEMLIMIT backstop)"
GOMEMLIMIT=256MiB "$DIR/veroctl" train "${TRAIN_ARGS[@]}" \
  -out-of-core -mem-budget-mb 32 -model "$DIR/ooc.json" >"$DIR/ooc.log" \
  || fail "out-of-core run failed" "$DIR/ooc.log"
grep -q "peak heap" "$DIR/ooc.log" \
  || fail "out-of-core run did not report peak heap" "$DIR/ooc.log"
cmp -s "$DIR/mem.json" "$DIR/ooc.json" \
  || fail "streamed model differs from in-memory run" "$DIR/mem.log" "$DIR/ooc.log"
echo "   models byte-identical; $(grep 'peak heap' "$DIR/ooc.log")"

echo "== injected mmap read failure aborts descriptively"
set +e
VERO_FAILPOINTS='ingest.mmap.read=error' \
  "$DIR/veroctl" train "${TRAIN_ARGS[@]}" \
  -out-of-core -mem-budget-mb 32 -model "$DIR/faulted.json" >"$DIR/fault.log" 2>&1
STATUS=$?
set -e
[ "$STATUS" -ne 0 ] || fail "training succeeded under injected read failures" "$DIR/fault.log"
grep -qi "cache" "$DIR/fault.log" \
  || fail "injected-fault error is not descriptive" "$DIR/fault.log"
[ -f "$DIR/faulted.json" ] && fail "model written despite injected read failures"
echo "   aborted with: $(tail -1 "$DIR/fault.log")"

echo "ooc smoke OK"
