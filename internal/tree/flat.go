// Flattened forest representation for low-latency inference.
//
// Training produces a Forest of per-tree Node slices whose JSON-tagged
// nodes carry per-node weight slices and diagnostic fields. That layout is
// convenient for growing and serializing trees but hostile to the serving
// hot path: every node visit chases a slice header, every feature probe
// binary-searches the sparse row, and every leaf allocates nothing but
// touches scattered cache lines.
//
// FlatForest compiles a trained Forest once into structure-of-arrays form:
// feature ids, thresholds, child links, default directions and leaf
// weights each live in one contiguous slice shared by every tree, and
// rows are scattered into a dense per-goroutine scratch so routing probes
// features in O(1). The compiled engine produces bit-exact the same
// margins as the pointer walk (identical routing predicate, identical
// accumulation order) and is safe for concurrent use.
package tree

import (
	"fmt"
	"runtime"
	"sync"

	"vero/internal/sparse"
)

// FlatForest is an immutable, cache-friendly compilation of a Forest.
// All exported methods are safe for concurrent use.
type FlatForest struct {
	numClass  int
	initScore []float64
	// scratchDim is 1 + the largest feature id any split routes on; a
	// dense scratch of this size suffices regardless of NumFeature.
	scratchDim int

	// Structure-of-arrays node storage, all trees concatenated. Node i is
	// a leaf when feature[i] < 0, in which case left[i] is the offset of
	// its weight block in weights (stride numClass) and right[i] is
	// unused. Interior nodes hold absolute child indexes.
	feature     []int32
	threshold   []float32
	splitBin    []uint16 // histogram-bin index of threshold (0 on leaves)
	left        []int32
	right       []int32
	defaultLeft []bool
	// weights holds leaf outputs pre-scaled by the learning rate, so
	// accumulation is a single fused add per class.
	weights []float64

	// roots[t] is the absolute index of tree t's root.
	roots []int32

	// Blocked-traversal support: remap[f] is the compact id of global
	// feature f among the numSplitFeat features any split routes on, or -1
	// when no split uses f. blockFeat mirrors feature with compact ids (0
	// on leaves), so the blocked walk probes a dense numSplitFeat-wide row
	// image instead of a scratchDim-wide one — the block scratch stays
	// small even for high-dimensional sparse data. nav[2i] and nav[2i+1]
	// are node i's left/right children, with leaves self-looping, so the
	// level-synchronous descent needs no leaf branch; treeSteps[t] is the
	// number of descent steps that provably lands every row of tree t on a
	// leaf (the tree's interior depth).
	remap        []int32
	blockFeat    []int32
	nav          []int32
	treeSteps    []int32
	numSplitFeat int

	scratch      sync.Pool
	blockScratch sync.Pool
}

// flatScratch is a per-goroutine dense view of one sparse row.
type flatScratch struct {
	val     []float32
	present []bool
	touched []int32
}

// Compile flattens a trained forest. The forest must not be mutated
// afterwards; the compiled engine captures its current trees.
func Compile(f *Forest) *FlatForest {
	ff := &FlatForest{
		numClass:  f.NumClass,
		initScore: append([]float64(nil), f.InitScore...),
		roots:     make([]int32, 0, len(f.Trees)),
	}
	total := 0
	for _, t := range f.Trees {
		total += len(t.Nodes)
	}
	ff.feature = make([]int32, 0, total)
	ff.threshold = make([]float32, 0, total)
	ff.splitBin = make([]uint16, 0, total)
	ff.left = make([]int32, 0, total)
	ff.right = make([]int32, 0, total)
	ff.defaultLeft = make([]bool, 0, total)

	maxFeat := int32(-1)
	for _, t := range f.Trees {
		base := int32(len(ff.feature))
		ff.roots = append(ff.roots, base)
		for i := range t.Nodes {
			n := &t.Nodes[i]
			if n.IsLeaf() {
				off := int32(len(ff.weights))
				ff.feature = append(ff.feature, -1)
				ff.threshold = append(ff.threshold, 0)
				ff.splitBin = append(ff.splitBin, 0)
				ff.left = append(ff.left, off)
				ff.right = append(ff.right, NoChild)
				ff.defaultLeft = append(ff.defaultLeft, false)
				for k := 0; k < f.NumClass; k++ {
					w := 0.0
					if k < len(n.Weights) {
						w = f.LearningRate * n.Weights[k]
					}
					ff.weights = append(ff.weights, w)
				}
				continue
			}
			if n.Feature > maxFeat {
				maxFeat = n.Feature
			}
			ff.feature = append(ff.feature, n.Feature)
			ff.threshold = append(ff.threshold, n.SplitValue)
			ff.splitBin = append(ff.splitBin, n.SplitBin)
			ff.left = append(ff.left, base+n.Left)
			ff.right = append(ff.right, base+n.Right)
			ff.defaultLeft = append(ff.defaultLeft, n.DefaultLeft)
		}
	}
	ff.scratchDim = int(maxFeat) + 1
	ff.scratch.New = func() any {
		return &flatScratch{
			val:     make([]float32, ff.scratchDim),
			present: make([]bool, ff.scratchDim),
			touched: make([]int32, 0, 64),
		}
	}

	// Compact feature ids for the blocked kernel: number split features in
	// first-use order, mirror the node array with compact ids (leaves probe
	// cell 0 harmlessly — their nav children self-loop), and record how
	// many descent steps land every row of each tree on a leaf.
	ff.remap = make([]int32, ff.scratchDim)
	for i := range ff.remap {
		ff.remap[i] = -1
	}
	ff.blockFeat = make([]int32, len(ff.feature))
	ff.nav = make([]int32, 2*len(ff.feature))
	for i, f := range ff.feature {
		if f < 0 {
			ff.nav[2*i] = int32(i)
			ff.nav[2*i+1] = int32(i)
			continue
		}
		if ff.remap[f] < 0 {
			ff.remap[f] = int32(ff.numSplitFeat)
			ff.numSplitFeat++
		}
		ff.blockFeat[i] = ff.remap[f]
		ff.nav[2*i] = ff.left[i]
		ff.nav[2*i+1] = ff.right[i]
	}
	ff.treeSteps = make([]int32, len(ff.roots))
	for t, root := range ff.roots {
		ff.treeSteps[t] = ff.interiorDepth(root)
	}
	ff.blockScratch.New = func() any { return &blockImage{} }
	return ff
}

// interiorDepth returns the longest root-to-leaf path from root in
// interior-node steps (0 for a leaf).
func (ff *FlatForest) interiorDepth(root int32) int32 {
	if ff.feature[root] < 0 {
		return 0
	}
	l := ff.interiorDepth(ff.left[root])
	r := ff.interiorDepth(ff.right[root])
	if r > l {
		l = r
	}
	return l + 1
}

// NumClass returns the per-row output dimensionality.
func (ff *FlatForest) NumClass() int { return ff.numClass }

// NumTrees returns the number of compiled trees.
func (ff *FlatForest) NumTrees() int { return len(ff.roots) }

// NumNodes returns the total node count across all trees.
func (ff *FlatForest) NumNodes() int { return len(ff.feature) }

// scatter loads a sparse row into the dense scratch. Features beyond
// scratchDim are never routed on by any split and are skipped.
func (s *flatScratch) scatter(feat []uint32, val []float32, dim int) {
	for i, f := range feat {
		if int(f) >= dim {
			continue
		}
		s.val[f] = val[i]
		s.present[f] = true
		s.touched = append(s.touched, int32(f))
	}
}

// clear resets only the entries scatter touched.
func (s *flatScratch) clear() {
	for _, f := range s.touched {
		s.present[f] = false
	}
	s.touched = s.touched[:0]
}

// predictScattered walks every tree for the row currently loaded in s and
// accumulates the pre-scaled leaf weights into out (length numClass).
func (ff *FlatForest) predictScattered(s *flatScratch, out []float64) {
	for _, root := range ff.roots {
		id := root
		for {
			f := ff.feature[id]
			if f < 0 {
				w := ff.weights[ff.left[id] : ff.left[id]+int32(ff.numClass)]
				for k := range w {
					out[k] += w[k]
				}
				break
			}
			if s.present[f] {
				if s.val[f] <= ff.threshold[id] {
					id = ff.left[id]
				} else {
					id = ff.right[id]
				}
			} else if ff.defaultLeft[id] {
				id = ff.left[id]
			} else {
				id = ff.right[id]
			}
		}
	}
}

// PredictRowInto computes the raw scores (margins) of one sparse row into
// out, which must have length NumClass.
func (ff *FlatForest) PredictRowInto(feat []uint32, val []float32, out []float64) {
	copy(out, ff.initScore)
	s := ff.scratch.Get().(*flatScratch)
	s.scatter(feat, val, ff.scratchDim)
	ff.predictScattered(s, out)
	s.clear()
	ff.scratch.Put(s)
}

// PredictRow returns the raw scores (margins) of one sparse row.
func (ff *FlatForest) PredictRow(feat []uint32, val []float32) []float64 {
	out := make([]float64, ff.numClass)
	ff.PredictRowInto(feat, val, out)
	return out
}

// batchRows is the number of rows one parallel work unit claims; large
// enough to amortize scheduling, small enough to balance skewed rows.
const batchRows = 256

// PredictCSR returns the raw scores of every row of m, row-major with
// stride NumClass, computed by `workers` goroutines (0 or negative means
// GOMAXPROCS).
func (ff *FlatForest) PredictCSR(m *sparse.CSR, workers int) []float64 {
	rows := m.Rows()
	out := make([]float64, rows*ff.numClass)
	if rows == 0 {
		return out
	}
	parallelRowRanges(rows, batchRows, workers, func(lo, hi int) {
		ff.predictRange(m, lo, hi, out)
	})
	return out
}

// parallelRowRanges invokes fn over [lo, hi) chunks of `chunk` rows from
// `workers` goroutines (0 or negative means GOMAXPROCS; the worker count
// never exceeds the chunk count, and a single worker runs inline).
func parallelRowRanges(rows, chunk, workers int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (rows + chunk - 1) / chunk; workers > max {
		workers = max
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	next := make(chan int)
	go func() {
		for lo := 0; lo < rows; lo += chunk {
			next <- lo
		}
		close(next)
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for lo := range next {
				hi := lo + chunk
				if hi > rows {
					hi = rows
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// predictRange scores rows [lo, hi) with one scratch.
func (ff *FlatForest) predictRange(m rowSource, lo, hi int, out []float64) {
	s := ff.scratch.Get().(*flatScratch)
	for i := lo; i < hi; i++ {
		row := out[i*ff.numClass : (i+1)*ff.numClass]
		copy(row, ff.initScore)
		feat, val := m.Row(i)
		s.scatter(feat, val, ff.scratchDim)
		ff.predictScattered(s, row)
		s.clear()
	}
	ff.scratch.Put(s)
}

// Blocked batch traversal.
//
// The per-row walk streams every tree's node arrays once per row: for a
// forest larger than L1/L2 each node visit is a cache miss. The blocked
// kernel inverts the loop nest — it scatters a block of rows into one
// dense block image, then walks the forest tree-by-tree over the whole
// block, so one tree's nodes (a few cache lines) are reused across every
// row of the block. Per row the trees still accumulate in forest order
// with the identical routing predicate, so margins are bit-identical to
// PredictRow.

// DefaultBlockRows is the instance-block size batch prediction uses when
// the caller does not choose one: big enough that a tree's nodes amortize
// over the block, small enough that the block image stays cache-resident.
const DefaultBlockRows = 64

// maxBlockCells caps the block image at blockRows*numSplitFeat cells so a
// huge forest (many distinct split features) degrades to smaller blocks
// instead of a giant scratch allocation.
const maxBlockCells = 1 << 22

// blockedMinRows is the batch size below which the blocked kernel falls
// back to the per-row walk: the lock-step descent only pays off once
// enough independent rows are in flight per level.
const blockedMinRows = 16

// blockImage is a dense row-major image of one instance block: cell
// r*numSplitFeat+g holds the value of the block's r-th row for compact
// feature g. ids holds each row's current node during the
// level-synchronous descent.
type blockImage struct {
	val     []float32
	present []bool
	touched []int32
	ids     []int32
}

// ensure sizes the image for cells entries and rows ids, keeping capacity
// across uses.
func (s *blockImage) ensure(cells, rows int) {
	if cap(s.val) < cells {
		s.val = make([]float32, cells)
		s.present = make([]bool, cells)
	}
	s.val = s.val[:cells]
	s.present = s.present[:cells]
	if cap(s.ids) < rows {
		s.ids = make([]int32, rows)
	}
	s.ids = s.ids[:rows]
}

// clear resets only the touched cells.
func (s *blockImage) clear() {
	for _, p := range s.touched {
		s.present[p] = false
	}
	s.touched = s.touched[:0]
}

// rowSource abstracts the two batch input forms (CSR matrices and
// per-row slice pairs) for the blocked kernel; Row is called once per row
// per block, so the indirect call is off the hot path.
type rowSource interface {
	Row(i int) (feat []uint32, val []float32)
}

// sliceRows adapts parallel per-row feature/value slices to a rowSource.
type sliceRows struct {
	feats [][]uint32
	vals  [][]float32
}

func (s sliceRows) Row(i int) ([]uint32, []float32) { return s.feats[i], s.vals[i] }

// blockSize clamps a requested block size to [1, maxBlockCells/F].
func (ff *FlatForest) blockSize(block int) int {
	if block <= 0 {
		block = DefaultBlockRows
	}
	if f := ff.numSplitFeat; f > 0 && block*f > maxBlockCells {
		block = maxBlockCells / f
		if block < 1 {
			block = 1
		}
	}
	return block
}

// PredictBlock scores a batch of independent sparse rows (parallel
// feature-id/value slices per row, sorted by feature id) into out
// (row-major, stride NumClass) on the calling goroutine, processing
// instance blocks of `block` rows (<=0 means DefaultBlockRows)
// tree-by-tree. Margins are bit-identical to PredictRow on every row.
func (ff *FlatForest) PredictBlock(feats [][]uint32, vals [][]float32, out []float64, block int) {
	ff.predictBlockRange(sliceRows{feats, vals}, 0, len(feats), out, block)
}

// PredictCSRBlocked is PredictCSR through the blocked kernel: raw scores
// for every row of m, row-major with stride NumClass, computed by
// `workers` goroutines (0 or negative means GOMAXPROCS) over instance
// blocks of `block` rows.
func (ff *FlatForest) PredictCSRBlocked(m *sparse.CSR, workers, block int) []float64 {
	rows := m.Rows()
	out := make([]float64, rows*ff.numClass)
	if rows == 0 {
		return out
	}
	block = ff.blockSize(block)
	// A parallel work unit is a whole number of blocks.
	chunk := ((batchRows + block - 1) / block) * block
	parallelRowRanges(rows, chunk, workers, func(lo, hi int) {
		ff.predictBlockRange(m, lo, hi, out, block)
	})
	return out
}

// predictBlockRange scores rows [lo, hi) of rows into out with one block
// image, block rows at a time.
func (ff *FlatForest) predictBlockRange(rows rowSource, lo, hi int, out []float64, block int) {
	// Tiny batches pay the level-synchronous walk's lock-step overhead
	// without amortizing it; the per-row walk (bit-identical) is faster.
	if hi-lo < blockedMinRows {
		ff.predictRange(rows, lo, hi, out)
		return
	}
	block = ff.blockSize(block)
	s := ff.blockScratch.Get().(*blockImage)
	s.ensure(block*ff.numSplitFeat, block)
	f := ff.numSplitFeat
	for b0 := lo; b0 < hi; b0 += block {
		b1 := b0 + block
		if b1 > hi {
			b1 = hi
		}
		for i := b0; i < b1; i++ {
			base := int32((i - b0) * f)
			feat, val := rows.Row(i)
			for j, ft := range feat {
				if int(ft) >= len(ff.remap) {
					continue
				}
				g := ff.remap[ft]
				if g < 0 {
					continue
				}
				s.val[base+g] = val[j]
				s.present[base+g] = true
				s.touched = append(s.touched, base+g)
			}
			copy(out[i*ff.numClass:(i+1)*ff.numClass], ff.initScore)
		}
		if ff.numClass == 1 {
			ff.walkBlockScalar(s, out[b0:b1])
		} else {
			ff.walkBlockVec(s, out[b0*ff.numClass:b1*ff.numClass], b1-b0)
		}
		s.clear()
	}
	ff.blockScratch.Put(s)
}

// descendBlock advances every row of the block through one tree: all rows
// start at the tree's root and take steps lock-step levels down, leaves
// self-looping via nav, so after steps iterations every row sits on its
// leaf. The level loop's body has no leaf branch and its row iterations
// are independent, which lets the CPU overlap the dependent node/image
// loads of many rows — this instruction-level parallelism, not just cache
// reuse, is where the blocked kernel's throughput comes from. The routing
// predicate is exactly the per-row walk's: present ? val<=threshold :
// defaultLeft.
func (ff *FlatForest) descendBlock(s *blockImage, rows int, root, steps int32) {
	blockFeat, threshold, defaultLeft, nav := ff.blockFeat, ff.threshold, ff.defaultLeft, ff.nav
	val, present := s.val, s.present
	f := ff.numSplitFeat
	ids := s.ids[:rows]
	for r := range ids {
		ids[r] = root
	}
	for d := int32(0); d < steps; d++ {
		base := 0
		for r := range ids {
			id := int(ids[r])
			p := base + int(blockFeat[id])
			// Three conditional moves, no data-dependent branches: routed
			// child when the feature is present, default child otherwise.
			l, rt := nav[2*id], nav[2*id+1]
			routed := rt
			if val[p] <= threshold[id] {
				routed = l
			}
			next := rt
			if defaultLeft[id] {
				next = l
			}
			if present[p] {
				next = routed
			}
			ids[r] = next
			base += f
		}
	}
}

// walkBlockScalar is the numClass==1 fast path: per tree, descend the
// whole block, then fold the leaf weights with a scalar accumulator per
// row and no weight sub-slicing.
func (ff *FlatForest) walkBlockScalar(s *blockImage, out []float64) {
	left, weights := ff.left, ff.weights
	for t, root := range ff.roots {
		ff.descendBlock(s, len(out), root, ff.treeSteps[t])
		for r := range out {
			out[r] += weights[left[s.ids[r]]]
		}
	}
}

// walkBlockVec is the multiclass path: identical descent, vector
// accumulation per leaf.
func (ff *FlatForest) walkBlockVec(s *blockImage, out []float64, rows int) {
	left, weights := ff.left, ff.weights
	k := ff.numClass
	for t, root := range ff.roots {
		ff.descendBlock(s, rows, root, ff.treeSteps[t])
		for r := 0; r < rows; r++ {
			w := weights[left[s.ids[r]] : left[s.ids[r]]+int32(k)]
			orow := out[r*k : r*k+k]
			for c := range w {
				orow[c] += w[c]
			}
		}
	}
}

// Validate checks structural invariants of the compiled forest; it is used
// by tests and by model-loading paths that compile untrusted input.
func (ff *FlatForest) Validate() error {
	n := int32(len(ff.feature))
	for i := int32(0); i < n; i++ {
		if ff.feature[i] < 0 {
			if off := ff.left[i]; off < 0 || int(off)+ff.numClass > len(ff.weights) {
				return fmt.Errorf("tree: flat leaf %d weight offset %d out of range", i, off)
			}
			continue
		}
		if ff.left[i] <= i || ff.left[i] >= n || ff.right[i] <= i || ff.right[i] >= n {
			return fmt.Errorf("tree: flat node %d has child links (%d,%d) outside (%d,%d)",
				i, ff.left[i], ff.right[i], i, n)
		}
	}
	return nil
}
