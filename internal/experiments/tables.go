package experiments

import (
	"fmt"

	"vero/internal/cluster"
	"vero/internal/core"
	"vero/internal/datasets"
	"vero/internal/loss"
	"vero/internal/systems"
	"vero/internal/tree"
)

// endToEndConfig is the Table 3 / Figure 11 hyper-parameter set, scaled
// from the paper's T=100/L=8/q=20.
func endToEndConfig(trees int) core.Config {
	return core.Config{Trees: trees, Layers: 6, Splits: 20, LearningRate: 0.3}
}

// Table3Row is one dataset's end-to-end comparison: average per-tree time
// (seconds) per system, plus the same numbers scaled by Vero's
// (the paper highlights the fastest per row).
type Table3Row struct {
	Dataset  string
	Seconds  map[systems.System]float64
	Relative map[systems.System]float64
	// Errs records systems that cannot run the workload (e.g. DimBoost
	// on multi-class), mirroring the "-" cells of Table 3.
	Errs map[systems.System]string
}

// table3Systems are the four systems of Table 3.
var table3Systems = []systems.System{systems.XGBoost, systems.LightGBM, systems.DimBoost, systems.Vero}

// table3Workers mirrors the paper: five workers for the LD/HS public
// datasets, eight for the big synthetic and multi-class ones.
func table3Workers(name string) int {
	switch name {
	case "synthesis", "rcv1-multi", "synthesis-multi":
		return 8
	default:
		return 5
	}
}

// Table3 reproduces "Average run time per tree scaled by Vero" over the
// eight public/synthetic datasets of Table 2.
func Table3(scale float64) ([]Table3Row, error) {
	names := []string{"susy", "higgs", "criteo", "epsilon", "rcv1", "synthesis", "rcv1-multi", "synthesis-multi"}
	var rows []Table3Row
	for _, name := range names {
		ds, err := loadScaled(name, scale)
		if err != nil {
			return nil, err
		}
		row := Table3Row{
			Dataset:  name,
			Seconds:  make(map[systems.System]float64),
			Relative: make(map[systems.System]float64),
			Errs:     make(map[systems.System]string),
		}
		for _, sys := range table3Systems {
			cl := cluster.New(table3Workers(name), cluster.Gigabit())
			res, err := systems.Train(cl, ds, sys, endToEndConfig(2))
			if err != nil {
				row.Errs[sys] = err.Error()
				continue
			}
			var sum float64
			for _, s := range res.PerTreeSeconds {
				sum += s
			}
			row.Seconds[sys] = sum / float64(len(res.PerTreeSeconds))
		}
		vero := row.Seconds[systems.Vero]
		for sys, sec := range row.Seconds {
			row.Relative[sys] = sec / vero
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// loadScaled loads a named simulacrum with its instance count scaled.
func loadScaled(name string, scale float64) (*datasets.Dataset, error) {
	desc, err := datasets.Describe(name)
	if err != nil {
		return nil, err
	}
	ds, err := datasets.Synthetic(datasets.SyntheticConfig{
		N: scaleN(desc.SimN, scale), D: desc.SimD, C: desc.SimC,
		InformativeRatio: datasets.SimInformativeRatio(desc),
		Density:          desc.SimDensity,
		Seed:             1001,
		LabelNoise:       desc.LabelNoise,
		InformativeBoost: desc.SimBoost,
	})
	if err != nil {
		return nil, err
	}
	ds.Name = name
	return ds, nil
}

// CurvePoint is one point of a Figure 11 convergence curve.
type CurvePoint struct {
	Seconds float64
	Metric  float64
}

// Curve is one system's convergence trajectory on one dataset.
type Curve struct {
	Dataset    string
	System     systems.System
	MetricName string // "AUC" (binary) or "accuracy" (multi-class)
	Points     []CurvePoint
	Err        string
}

// Fig11 reproduces the convergence curves (validation metric vs time) of
// one dataset for the Table 3 systems.
func Fig11(name string, trees int, scale float64) ([]Curve, error) {
	ds, err := loadScaled(name, scale)
	if err != nil {
		return nil, err
	}
	train, valid := ds.Split(0.8, 1003)
	var curves []Curve
	for _, sys := range table3Systems {
		curve := Curve{Dataset: name, System: sys, MetricName: "AUC"}
		if ds.NumClass > 2 {
			curve.MetricName = "accuracy"
		}
		// Incremental validation scoring: margins updated by each new
		// tree inside the OnTree hook, exactly how the paper's curves
		// sample model quality over time.
		numClass := 1
		if ds.NumClass > 2 {
			numClass = ds.NumClass
		}
		margins := make([]float64, valid.NumInstances()*numClass)
		base := endToEndConfig(trees)
		base.OnTree = func(_ int, elapsed float64, tr *tree.Tree) {
			for i := 0; i < valid.NumInstances(); i++ {
				feat, val := valid.X.Row(i)
				tr.Predict(feat, val, base.LearningRate, margins[i*numClass:(i+1)*numClass])
			}
			var metric float64
			if numClass > 1 {
				metric = loss.MultiAccuracy(margins, valid.Labels, numClass)
			} else {
				metric = loss.AUC(margins, valid.Labels)
			}
			curve.Points = append(curve.Points, CurvePoint{Seconds: elapsed, Metric: metric})
		}
		cl := cluster.New(table3Workers(name), cluster.Gigabit())
		if _, err := systems.Train(cl, train, sys, base); err != nil {
			curve.Err = err.Error()
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// Table4Row is one industrial dataset's per-tree time (Figure 12/Table 4).
type Table4Row struct {
	Dataset string
	Seconds map[systems.System]float64
	Errs    map[systems.System]string
}

// Table4 reproduces the industrial evaluation (Section 6): Gender with
// XGBoost/DimBoost/Vero, Age and Taste with XGBoost/Vero, on the 10 Gbps
// production network model.
func Table4(scale float64) ([]Table4Row, error) {
	cases := []struct {
		name    string
		systems []systems.System
		workers int
	}{
		// The paper uses 50 workers for Gender and 20 for Age/Taste;
		// scaled to the simulacra sizes.
		{"gender", []systems.System{systems.XGBoost, systems.DimBoost, systems.Vero}, 10},
		{"age", []systems.System{systems.XGBoost, systems.Vero}, 8},
		{"taste", []systems.System{systems.XGBoost, systems.Vero}, 8},
	}
	var rows []Table4Row
	for _, c := range cases {
		ds, err := loadScaled(c.name, scale)
		if err != nil {
			return nil, err
		}
		row := Table4Row{Dataset: c.name, Seconds: make(map[systems.System]float64), Errs: make(map[systems.System]string)}
		for _, sys := range c.systems {
			cl := cluster.New(c.workers, cluster.TenGigabit())
			res, err := systems.Train(cl, ds, sys, endToEndConfig(2))
			if err != nil {
				row.Errs[sys] = err.Error()
				continue
			}
			var sum float64
			for _, s := range res.PerTreeSeconds {
				sum += s
			}
			row.Seconds[sys] = sum / float64(len(res.PerTreeSeconds))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table7Row compares Yggdrasil, the optimized QD3 and Vero on
// low-dimensional datasets (appendix C).
type Table7Row struct {
	Dataset string
	Seconds map[systems.System]float64
}

// Table7 reproduces the Yggdrasil comparison over Epsilon/SUSY/Higgs-like
// workloads with 5 workers.
func Table7(scale float64) ([]Table7Row, error) {
	var rows []Table7Row
	for _, name := range []string{"epsilon", "susy", "higgs"} {
		ds, err := loadScaled(name, scale)
		if err != nil {
			return nil, err
		}
		row := Table7Row{Dataset: name, Seconds: make(map[systems.System]float64)}
		for _, sys := range []systems.System{systems.Yggdrasil, systems.QD3Hybrid, systems.Vero} {
			cl := cluster.New(5, cluster.Gigabit())
			res, err := systems.Train(cl, ds, sys, endToEndConfig(2))
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", sys, name, err)
			}
			var sum float64
			for _, s := range res.PerTreeSeconds {
				sum += s
			}
			row.Seconds[sys] = sum / float64(len(res.PerTreeSeconds))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table8Row compares LightGBM data-parallel, feature-parallel and Vero
// (appendix D).
type Table8Row struct {
	Dataset string
	Seconds map[systems.System]float64
	// DataMB shows feature-parallel's full-copy memory cost per worker.
	DataMB map[systems.System]float64
}

// Table8 reproduces the LightGBM comparison on RCV1-like datasets with 5
// workers.
func Table8(scale float64) ([]Table8Row, error) {
	var rows []Table8Row
	for _, name := range []string{"rcv1", "rcv1-multi"} {
		ds, err := loadScaled(name, scale)
		if err != nil {
			return nil, err
		}
		row := Table8Row{Dataset: name,
			Seconds: make(map[systems.System]float64),
			DataMB:  make(map[systems.System]float64)}
		for _, sys := range []systems.System{systems.LightGBM, systems.LightGBMFP, systems.Vero} {
			cl := cluster.New(5, cluster.Gigabit())
			res, err := systems.Train(cl, ds, sys, endToEndConfig(2))
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", sys, name, err)
			}
			var sum float64
			for _, s := range res.PerTreeSeconds {
				sum += s
			}
			row.Seconds[sys] = sum / float64(len(res.PerTreeSeconds))
			row.DataMB[sys] = float64(cl.Stats().Mem("data").MaxPeak()) / (1 << 20)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
