package ingest

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vero/internal/failpoint"
)

// writeCacheImage writes a .vbin image to a temp file and returns its path.
func writeCacheImage(t *testing.T, img []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sample.vbin")
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// openModes returns the same image opened every way a view can be served:
// mmap (where available), forced pread, and an in-memory byte image.
func openModes(t *testing.T, img []byte) map[string]*MappedCache {
	t.Helper()
	path := writeCacheImage(t, img)
	modes := map[string]*MappedCache{}
	mm, err := MapCacheFileOptions(path, MapOptions{})
	if err != nil {
		t.Fatalf("mmap open: %v", err)
	}
	modes["mmap"] = mm
	pr, err := MapCacheFileOptions(path, MapOptions{DisableMmap: true})
	if err != nil {
		t.Fatalf("pread open: %v", err)
	}
	modes["pread"] = pr
	by, err := MapCacheBytes(img, "sample")
	if err != nil {
		t.Fatalf("bytes open: %v", err)
	}
	modes["bytes"] = by
	return modes
}

// TestMappedCacheModesAgree is the access-path equivalence property: the
// mmap view, the pread fallback and the byte-image view must expose
// identical shape, column ranges, entries, probes and fingerprints, and
// every column must satisfy the strictly-ascending instance invariant the
// block readers binary-search on.
func TestMappedCacheModesAgree(t *testing.T) {
	img := sampleCacheImage(t)
	modes := openModes(t, img)
	ref := modes["bytes"]
	defer func() {
		for _, m := range modes {
			m.Close()
		}
	}()

	nnz := ref.NNZ()
	refInst := make([]uint32, nnz)
	refBins := make([]uint16, nnz)
	for name, m := range modes {
		if m.Rows() != ref.Rows() || m.Cols() != ref.Cols() || m.NNZ() != nnz {
			t.Fatalf("%s: shape %dx%d/%d, want %dx%d/%d", name,
				m.Rows(), m.Cols(), m.NNZ(), ref.Rows(), ref.Cols(), nnz)
		}
		if m.Fingerprint() != ref.Fingerprint() {
			t.Fatalf("%s: fingerprint %q, want %q", name, m.Fingerprint(), ref.Fingerprint())
		}
	}
	ds := ref.Dataset()
	instBuf := make([]uint32, nnz)
	binBuf := make([]uint16, nnz)
	for j := 0; j < ref.Cols(); j++ {
		lo, hi := ref.ColRange(j)
		if got := hi - lo; got != ds.Prebin.FeatCount[j] {
			t.Fatalf("column %d holds %d entries, FeatCount says %d", j, got, ds.Prebin.FeatCount[j])
		}
		ri, rb, err := ref.Entries(lo, hi, refInst, refBins)
		if err != nil {
			t.Fatalf("column %d reference read: %v", j, err)
		}
		for k := 1; k < len(ri); k++ {
			if ri[k] <= ri[k-1] {
				t.Fatalf("column %d instances not strictly ascending at %d", j, k)
			}
		}
		for name, m := range modes {
			clo, chi := m.ColRange(j)
			if clo != lo || chi != hi {
				t.Fatalf("%s: column %d range [%d,%d), want [%d,%d)", name, j, clo, chi, lo, hi)
			}
			gi, gb, err := m.Entries(lo, hi, instBuf, binBuf)
			if err != nil {
				t.Fatalf("%s: column %d read: %v", name, j, err)
			}
			for k := range ri {
				if gi[k] != ri[k] || gb[k] != rb[k] {
					t.Fatalf("%s: column %d entry %d = (%d,%d), want (%d,%d)",
						name, j, k, gi[k], gb[k], ri[k], rb[k])
				}
			}
			// Every stored entry must be findable; SearchInst must bracket
			// the column.
			for k, inst := range ri {
				bin, found, err := m.LookupInst(lo, hi, inst)
				if err != nil || !found || bin != rb[k] {
					t.Fatalf("%s: lookup(%d,%d) = (%d,%v,%v), want (%d,true,nil)",
						name, j, inst, bin, found, err, rb[k])
				}
			}
			if pos, err := m.SearchInst(lo, hi, 0); err != nil || pos != lo {
				t.Fatalf("%s: search start = %d,%v want %d", name, pos, err, lo)
			}
			if pos, err := m.SearchInst(lo, hi, uint32(m.Rows())); err != nil || pos != hi {
				t.Fatalf("%s: search end = %d,%v want %d", name, pos, err, hi)
			}
		}
	}
	// An instance absent from a column reads as missing, not as garbage.
	for j := 0; j < ref.Cols(); j++ {
		lo, hi := ref.ColRange(j)
		ri, _, err := ref.Entries(lo, hi, refInst, refBins)
		if err != nil {
			t.Fatal(err)
		}
		present := map[uint32]bool{}
		for _, inst := range ri {
			present[inst] = true
		}
		for inst := uint32(0); inst < uint32(ref.Rows()); inst++ {
			if present[inst] {
				continue
			}
			if _, found, err := ref.LookupInst(lo, hi, inst); err != nil || found {
				t.Fatalf("column %d: absent instance %d reported present (err %v)", j, inst, err)
			}
			break
		}
	}
}

// TestMappedCacheEveryTruncationRejected cuts the image at every byte:
// open-time validation (header cross-check, checksum, column invariants)
// must reject each prefix with a wrapped ErrCacheCorrupt or a version
// mismatch — never a panic, never a working view.
func TestMappedCacheEveryTruncationRejected(t *testing.T) {
	img := sampleCacheImage(t)
	for cut := 0; cut < len(img); cut++ {
		m, err := MapCacheBytes(img[:cut], "trunc")
		if err == nil {
			m.Close()
			t.Fatalf("truncation at %d of %d accepted", cut, len(img))
		}
		var mismatch *CacheMismatchError
		if !errors.Is(err, ErrCacheCorrupt) && !errors.As(err, &mismatch) {
			t.Fatalf("truncation at %d: error does not wrap ErrCacheCorrupt: %v", cut, err)
		}
	}
	m, err := MapCacheBytes(img, "whole")
	if err != nil {
		t.Fatalf("untruncated image rejected: %v", err)
	}
	m.Close()
}

// TestMappedCacheBitFlipRejected flips one payload bit: the open-time
// checksum pass must catch it in both access modes.
func TestMappedCacheBitFlipRejected(t *testing.T) {
	img := sampleCacheImage(t)
	bad := append([]byte(nil), img...)
	bad[vbinHeaderSize+len(bad)/2] ^= 0x10
	path := writeCacheImage(t, bad)
	for _, disable := range []bool{false, true} {
		_, err := MapCacheFileOptions(path, MapOptions{DisableMmap: disable})
		if !errors.Is(err, ErrCacheCorrupt) || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("disableMmap=%v: bit flip: %v", disable, err)
		}
	}
}

// TestMappedCacheForgedHeaderRejected forges oversized dimensions: the
// header sits outside the checksum, so the view must cross-check it
// against the file size before any allocation of the claimed magnitude.
func TestMappedCacheForgedHeaderRejected(t *testing.T) {
	img := sampleCacheImage(t)
	for _, off := range []int{8, 16, 24} { // rows, cols, nnz
		bad := append([]byte(nil), img...)
		binary.LittleEndian.PutUint64(bad[off:], 1<<39)
		if _, err := MapCacheBytes(bad, "forged"); !errors.Is(err, ErrCacheCorrupt) {
			t.Fatalf("offset %d forged to 1<<39: %v", off, err)
		}
	}
}

// TestMappedCacheFailpoint arms ingest.mmap.read: block reads on an open
// view must fail with an error wrapping both ErrCacheCorrupt and the
// injected failure — in both access modes — and recover once disarmed.
// Open-time validation is deliberately outside the failpoint, so arming
// it does not prevent opening.
func TestMappedCacheFailpoint(t *testing.T) {
	defer failpoint.Reset()
	img := sampleCacheImage(t)
	path := writeCacheImage(t, img)
	for _, disable := range []bool{false, true} {
		m, err := MapCacheFileOptions(path, MapOptions{DisableMmap: disable})
		if err != nil {
			t.Fatal(err)
		}
		if err := failpoint.Enable(FailpointMmapRead, "error"); err != nil {
			t.Fatal(err)
		}
		lo, hi := m.ColRange(0)
		instBuf := make([]uint32, hi-lo)
		binBuf := make([]uint16, hi-lo)
		if _, _, err := m.Entries(lo, hi, instBuf, binBuf); !errors.Is(err, ErrCacheCorrupt) || !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("disableMmap=%v: Entries under failpoint: %v", disable, err)
		}
		if _, err := m.SearchInst(lo, hi, 0); !errors.Is(err, ErrCacheCorrupt) || !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("disableMmap=%v: SearchInst under failpoint: %v", disable, err)
		}
		if _, _, err := m.LookupInst(lo, hi, 0); !errors.Is(err, ErrCacheCorrupt) || !errors.Is(err, failpoint.ErrInjected) {
			t.Fatalf("disableMmap=%v: LookupInst under failpoint: %v", disable, err)
		}
		failpoint.Reset()
		if _, _, err := m.Entries(lo, hi, instBuf, binBuf); err != nil {
			t.Fatalf("disableMmap=%v: disarmed read failed: %v", disable, err)
		}
		m.Close()
	}
}
