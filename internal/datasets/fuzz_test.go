package datasets

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// corpusSeeds reads every testdata/*.libsvm file; they seed the fuzzer
// and double as fixed parser fixtures.
func corpusSeeds(tb testing.TB) map[string][]byte {
	tb.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.libsvm"))
	if err != nil {
		tb.Fatal(err)
	}
	if len(paths) == 0 {
		tb.Fatal("no testdata/*.libsvm seed files")
	}
	seeds := make(map[string][]byte, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			tb.Fatal(err)
		}
		seeds[filepath.Base(p)] = data
	}
	return seeds
}

// TestReadLibSVMSeedCorpus pins the seed corpus itself: every committed
// fixture parses, with the shape the file encodes.
func TestReadLibSVMSeedCorpus(t *testing.T) {
	want := map[string]struct {
		numClass, rows, cols int
	}{
		"binary.libsvm":     {2, 4, 8},
		"multiclass.libsvm": {3, 4, 5},
		"regression.libsvm": {1, 3, 3},
		"edge.libsvm":       {2, 2, 1001},
	}
	seeds := corpusSeeds(t)
	for name, data := range seeds {
		w, ok := want[name]
		if !ok {
			t.Fatalf("fixture %s has no expectation; add one", name)
		}
		ds, err := ReadLibSVM(bytes.NewReader(data), w.numClass)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.NumInstances() != w.rows || ds.NumFeatures() != w.cols {
			t.Fatalf("%s: shape %dx%d, want %dx%d", name, ds.NumInstances(), ds.NumFeatures(), w.rows, w.cols)
		}
	}
}

// FuzzReadLibSVM feeds arbitrary bytes through the parser at every task
// type: it must never panic, and any input it accepts must satisfy the
// Dataset invariants and survive a Write/Read round trip unchanged.
func FuzzReadLibSVM(f *testing.F) {
	for _, data := range corpusSeeds(f) {
		f.Add(data)
	}
	f.Add([]byte("1 0:1.5 2:nan\n0 1:inf\n"))
	f.Add([]byte("2.5e-1 4294967295:1\n"))
	f.Add([]byte("# only a comment\n\n"))
	f.Add([]byte("1 5:0\n1 0:-0 5:1e39\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, numClass := range []int{1, 2, 3} {
			ds, err := ReadLibSVM(bytes.NewReader(data), numClass)
			if err != nil {
				continue
			}
			if ds.NumInstances() != len(ds.Labels) {
				t.Fatalf("numClass %d: %d rows but %d labels", numClass, ds.NumInstances(), len(ds.Labels))
			}
			for i := 0; i < ds.NumInstances(); i++ {
				feat, val := ds.X.Row(i)
				if len(feat) != len(val) {
					t.Fatalf("row %d: %d indices, %d values", i, len(feat), len(val))
				}
				for j := 1; j < len(feat); j++ {
					if feat[j] <= feat[j-1] {
						t.Fatalf("row %d not strictly sorted at %d", i, j)
					}
				}
			}

			// Round trip: write and re-read reproduces the matrix bitwise.
			var buf bytes.Buffer
			if err := WriteLibSVM(&buf, ds); err != nil {
				t.Fatalf("write: %v", err)
			}
			back, err := ReadLibSVM(bytes.NewReader(buf.Bytes()), numClass)
			if err != nil {
				t.Fatalf("re-read rejected written output: %v\n%s", err, buf.Bytes())
			}
			if back.NumInstances() != ds.NumInstances() {
				t.Fatalf("round trip rows %d, want %d", back.NumInstances(), ds.NumInstances())
			}
			for i := 0; i < ds.NumInstances(); i++ {
				if math.Float32bits(back.Labels[i]) != math.Float32bits(ds.Labels[i]) {
					t.Fatalf("row %d label %v became %v", i, ds.Labels[i], back.Labels[i])
				}
				f0, v0 := ds.X.Row(i)
				f1, v1 := back.X.Row(i)
				if len(f0) != len(f1) {
					t.Fatalf("row %d nnz %d became %d", i, len(f0), len(f1))
				}
				for j := range f0 {
					if f0[j] != f1[j] || math.Float32bits(v0[j]) != math.Float32bits(v1[j]) {
						t.Fatalf("row %d entry %d (%d:%v) became (%d:%v)", i, j, f0[j], v0[j], f1[j], v1[j])
					}
				}
			}
		}
	})
}
